#!/usr/bin/env python3
"""CI schema check for the rif observability outputs.

Usage: check_observability.py <metrics.json> <trace.json>

Validates the documented shape (docs/OBSERVABILITY.md): the metrics
file is an object keyed by scenario name whose entries carry kind/unit
and value (counter/gauge) or count/min/max/mean/percentiles
(distribution); the trace file is Chrome trace_event JSON on the
simulated_ns clock with monotone non-negative timestamps per track.
"""

import json
import re
import sys

KINDS = {"counter", "gauge", "distribution"}
DIST_KEYS = {"count", "min", "max", "mean", "p50", "p90", "p99",
             "p99.9", "p99.99"}
DRIVE_RE = re.compile(r"^ssd(\d+)\.(.+)$")


def check_drive_prefixes(path, scenario, snap):
    """Fleet runs re-home each drive's ssd.* metrics under ssd<i>.
    (docs/OBSERVABILITY.md naming scheme). When any per-drive names are
    present, the drive indices must be dense 0..N-1 and every drive
    must publish the identical suffix set — a missing or extra suffix
    means one drive's instrumentation silently diverged."""
    per_drive = {}
    for name in snap:
        m = DRIVE_RE.match(name)
        if m:
            per_drive.setdefault(int(m.group(1)), set()).add(m.group(2))
    if not per_drive:
        return 0
    drives = sorted(per_drive)
    if drives != list(range(len(drives))):
        fail(f"{path}: {scenario!r} drive indices {drives} are not "
             f"dense 0..{len(drives) - 1}")
    suffixes = per_drive[0]
    for d, have in per_drive.items():
        if have != suffixes:
            diff = sorted(suffixes ^ have)
            fail(f"{path}: {scenario!r} ssd{d}.* suffixes differ from "
                 f"ssd0.* by {diff}")
    return len(drives)


def fail(msg):
    print(f"check_observability: {msg}", file=sys.stderr)
    sys.exit(1)


def check_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or not doc:
        fail(f"{path}: expected a non-empty object keyed by scenario")
    for scenario, snap in doc.items():
        if not isinstance(snap, dict) or not snap:
            fail(f"{path}: scenario {scenario!r} has no metrics")
        names = list(snap)
        if names != sorted(names):
            fail(f"{path}: {scenario!r} entries are not name-sorted")
        for name, e in snap.items():
            if e.get("kind") not in KINDS:
                fail(f"{path}: {name!r} has bad kind {e.get('kind')!r}")
            if "unit" not in e:
                fail(f"{path}: {name!r} lacks a unit")
            if e["kind"] == "distribution":
                missing = DIST_KEYS - e.keys()
                if missing:
                    fail(f"{path}: {name!r} lacks {sorted(missing)}")
            elif not isinstance(e.get("value"), int):
                fail(f"{path}: {name!r} lacks an integer value")
    fleets = 0
    for scenario, snap in doc.items():
        fleets += check_drive_prefixes(path, scenario, snap) > 0
    # The run that produced this must have simulated something: a bare
    # drive publishes ssd.*, a fleet run re-homes them under ssd<i>.*.
    snap = next(iter(doc.values()))
    if not any(n.startswith("ssd.") or DRIVE_RE.match(n) for n in snap):
        fail(f"{path}: no ssd.* metrics — instrumentation missing?")
    print(f"{path}: {sum(len(s) for s in doc.values())} metrics over "
          f"{len(doc)} scenario(s) ({fleets} fleet) ok")


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents")
    other = doc.get("otherData", {})
    if other.get("clock") != "simulated_ns":
        fail(f"{path}: otherData.clock != simulated_ns")
    if "dropped" not in other:
        fail(f"{path}: otherData.dropped missing")
    last_ts = {}
    spans = instants = 0
    for e in events:
        ph = e.get("ph")
        if ph == "M":
            continue
        if ph not in ("X", "i"):
            fail(f"{path}: unexpected phase {ph!r}")
        ts, pid = e["ts"], e["pid"]
        if ts < 0 or (ph == "X" and e["dur"] < 0):
            fail(f"{path}: negative timestamp in {e}")
        if ts < last_ts.get(pid, 0.0):
            fail(f"{path}: track {pid} timestamps not sorted at {e}")
        last_ts[pid] = ts
        spans += ph == "X"
        instants += ph == "i"
    if spans == 0:
        fail(f"{path}: no complete spans recorded")
    print(f"{path}: {spans} spans + {instants} instants on "
          f"{len(last_ts)} track(s), dropped={other['dropped']} ok")


def main():
    if len(sys.argv) != 3:
        fail("usage: check_observability.py <metrics.json> <trace.json>")
    check_metrics(sys.argv[1])
    check_trace(sys.argv[2])


if __name__ == "__main__":
    main()
