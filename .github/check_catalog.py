#!/usr/bin/env python3
"""CI check: docs/OBSERVABILITY.md must list every registered metric.

Scans the sources for metric registrations (handle declarations and
direct registerMetric/counter/gauge/dist publication calls), extracts
the dotted name — or its literal prefix, for names built with a
runtime index like "ssd.chan" + N — and requires each to appear in the
catalog. Keeps the docs a contract rather than a snapshot.
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOC = (ROOT / "docs" / "OBSERVABILITY.md").read_text()

# A registration site, followed within a short window by the first
# string literal — the metric name (or its static prefix).
SITES = re.compile(
    r"(?:metrics::Counter|metrics::Gauge|metrics::Distribution"
    r"|registerMetric\(|\bcounter\(|\bgauge\(|\bdist\()"
    r"[^\"]{0,120}\"([a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+|[a-z]+\.[a-z]+)\"",
    re.S)

missing = []
names = set()
for src in sorted(ROOT.glob("src/**/*.cc")) + sorted(ROOT.glob("src/**/*.h")):
    text = src.read_text()
    for m in SITES.finditer(text):
        name = m.group(1)
        if name.startswith("test."):
            continue
        names.add(name)
        if name not in DOC:
            missing.append(f"{src.relative_to(ROOT)}: {name}")

if not names:
    print("check_catalog: found no metric registrations — scan broken?",
          file=sys.stderr)
    sys.exit(1)
if missing:
    print("check_catalog: metrics missing from docs/OBSERVABILITY.md:",
          file=sys.stderr)
    for line in missing:
        print(f"  {line}", file=sys.stderr)
    sys.exit(1)

for flag in ("--metrics", "--trace", "rif metrics"):
    if flag not in DOC:
        print(f"check_catalog: {flag!r} undocumented", file=sys.stderr)
        sys.exit(1)

print(f"check_catalog: all {len(names)} registered metric names are "
      "in docs/OBSERVABILITY.md")
