#!/usr/bin/env python3
"""CI check: docs/NAND_MODEL.md must document every NAND-model knob.

Scans the option registry (src/core/options.cc) for `--set` keys in the
cell-model sections — every "nand.*" and "rvs.*" key — and requires
each to appear verbatim in docs/NAND_MODEL.md. The reference manual is
a contract: a knob that can be set but is not in the manual fails CI.
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOC = (ROOT / "docs" / "NAND_MODEL.md").read_text()
SRC = (ROOT / "src" / "core" / "options.cc").read_text()

# Any registered key literal in the nand./rvs. namespaces. Error-message
# uses repeat the same literal, so a set() collapses them.
KEYS = re.compile(r"\"((?:nand|rvs)\.[A-Za-z0-9_.]+)\"")

keys = sorted(set(KEYS.findall(SRC)))
if not keys:
    print("check_nand_doc: found no nand.*/rvs.* keys in "
          "src/core/options.cc — scan broken?", file=sys.stderr)
    sys.exit(1)

missing = [k for k in keys if k not in DOC]
if missing:
    print("check_nand_doc: --set keys missing from docs/NAND_MODEL.md:",
          file=sys.stderr)
    for key in missing:
        print(f"  {key}", file=sys.stderr)
    sys.exit(1)

print(f"check_nand_doc: all {len(keys)} nand.*/rvs.* keys are in "
      "docs/NAND_MODEL.md")
