# Empty compiler generated dependencies file for cloud_storage_study.
# This may be replaced when dependencies are built.
