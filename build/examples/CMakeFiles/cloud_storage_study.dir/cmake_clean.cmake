file(REMOVE_RECURSE
  "CMakeFiles/cloud_storage_study.dir/cloud_storage_study.cpp.o"
  "CMakeFiles/cloud_storage_study.dir/cloud_storage_study.cpp.o.d"
  "cloud_storage_study"
  "cloud_storage_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_storage_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
