# Empty dependencies file for odear_pipeline_demo.
# This may be replaced when dependencies are built.
