file(REMOVE_RECURSE
  "CMakeFiles/odear_pipeline_demo.dir/odear_pipeline_demo.cpp.o"
  "CMakeFiles/odear_pipeline_demo.dir/odear_pipeline_demo.cpp.o.d"
  "odear_pipeline_demo"
  "odear_pipeline_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odear_pipeline_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
