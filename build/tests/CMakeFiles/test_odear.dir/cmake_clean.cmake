file(REMOVE_RECURSE
  "CMakeFiles/test_odear.dir/test_odear.cc.o"
  "CMakeFiles/test_odear.dir/test_odear.cc.o.d"
  "test_odear"
  "test_odear.pdb"
  "test_odear[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_odear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
