# Empty compiler generated dependencies file for test_odear.
# This may be replaced when dependencies are built.
