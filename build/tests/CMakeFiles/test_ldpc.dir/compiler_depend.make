# Empty compiler generated dependencies file for test_ldpc.
# This may be replaced when dependencies are built.
