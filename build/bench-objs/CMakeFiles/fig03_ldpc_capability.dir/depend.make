# Empty dependencies file for fig03_ldpc_capability.
# This may be replaced when dependencies are built.
