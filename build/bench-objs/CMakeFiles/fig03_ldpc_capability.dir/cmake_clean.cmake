file(REMOVE_RECURSE
  "../bench/fig03_ldpc_capability"
  "../bench/fig03_ldpc_capability.pdb"
  "CMakeFiles/fig03_ldpc_capability.dir/fig03_ldpc_capability.cc.o"
  "CMakeFiles/fig03_ldpc_capability.dir/fig03_ldpc_capability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_ldpc_capability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
