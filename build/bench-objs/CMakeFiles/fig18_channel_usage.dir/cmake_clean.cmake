file(REMOVE_RECURSE
  "../bench/fig18_channel_usage"
  "../bench/fig18_channel_usage.pdb"
  "CMakeFiles/fig18_channel_usage.dir/fig18_channel_usage.cc.o"
  "CMakeFiles/fig18_channel_usage.dir/fig18_channel_usage.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_channel_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
