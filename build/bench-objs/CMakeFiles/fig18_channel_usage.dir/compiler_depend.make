# Empty compiler generated dependencies file for fig18_channel_usage.
# This may be replaced when dependencies are built.
