file(REMOVE_RECURSE
  "../bench/ablation_ecc_buffer"
  "../bench/ablation_ecc_buffer.pdb"
  "CMakeFiles/ablation_ecc_buffer.dir/ablation_ecc_buffer.cc.o"
  "CMakeFiles/ablation_ecc_buffer.dir/ablation_ecc_buffer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ecc_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
