# Empty compiler generated dependencies file for ablation_ecc_buffer.
# This may be replaced when dependencies are built.
