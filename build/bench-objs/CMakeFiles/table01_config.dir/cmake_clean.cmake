file(REMOVE_RECURSE
  "../bench/table01_config"
  "../bench/table01_config.pdb"
  "CMakeFiles/table01_config.dir/table01_config.cc.o"
  "CMakeFiles/table01_config.dir/table01_config.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
