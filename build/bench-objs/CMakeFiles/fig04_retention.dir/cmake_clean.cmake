file(REMOVE_RECURSE
  "../bench/fig04_retention"
  "../bench/fig04_retention.pdb"
  "CMakeFiles/fig04_retention.dir/fig04_retention.cc.o"
  "CMakeFiles/fig04_retention.dir/fig04_retention.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_retention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
