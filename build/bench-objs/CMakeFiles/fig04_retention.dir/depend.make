# Empty dependencies file for fig04_retention.
# This may be replaced when dependencies are built.
