file(REMOVE_RECURSE
  "../bench/fig06_motivation"
  "../bench/fig06_motivation.pdb"
  "CMakeFiles/fig06_motivation.dir/fig06_motivation.cc.o"
  "CMakeFiles/fig06_motivation.dir/fig06_motivation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
