# Empty dependencies file for ablation_conventional.
# This may be replaced when dependencies are built.
