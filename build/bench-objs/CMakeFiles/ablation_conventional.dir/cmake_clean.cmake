file(REMOVE_RECURSE
  "../bench/ablation_conventional"
  "../bench/ablation_conventional.pdb"
  "CMakeFiles/ablation_conventional.dir/ablation_conventional.cc.o"
  "CMakeFiles/ablation_conventional.dir/ablation_conventional.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_conventional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
