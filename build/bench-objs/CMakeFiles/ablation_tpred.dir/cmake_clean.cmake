file(REMOVE_RECURSE
  "../bench/ablation_tpred"
  "../bench/ablation_tpred.pdb"
  "CMakeFiles/ablation_tpred.dir/ablation_tpred.cc.o"
  "CMakeFiles/ablation_tpred.dir/ablation_tpred.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
