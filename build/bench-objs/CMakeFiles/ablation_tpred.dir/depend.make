# Empty dependencies file for ablation_tpred.
# This may be replaced when dependencies are built.
