file(REMOVE_RECURSE
  "../bench/overhead_ppa"
  "../bench/overhead_ppa.pdb"
  "CMakeFiles/overhead_ppa.dir/overhead_ppa.cc.o"
  "CMakeFiles/overhead_ppa.dir/overhead_ppa.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_ppa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
