# Empty compiler generated dependencies file for overhead_ppa.
# This may be replaced when dependencies are built.
