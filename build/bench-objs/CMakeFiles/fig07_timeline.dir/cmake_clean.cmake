file(REMOVE_RECURSE
  "../bench/fig07_timeline"
  "../bench/fig07_timeline.pdb"
  "CMakeFiles/fig07_timeline.dir/fig07_timeline.cc.o"
  "CMakeFiles/fig07_timeline.dir/fig07_timeline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
