# Empty dependencies file for fig10_syndrome_corr.
# This may be replaced when dependencies are built.
