file(REMOVE_RECURSE
  "../bench/fig10_syndrome_corr"
  "../bench/fig10_syndrome_corr.pdb"
  "CMakeFiles/fig10_syndrome_corr.dir/fig10_syndrome_corr.cc.o"
  "CMakeFiles/fig10_syndrome_corr.dir/fig10_syndrome_corr.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_syndrome_corr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
