# Empty dependencies file for fig12_chunk_similarity.
# This may be replaced when dependencies are built.
