file(REMOVE_RECURSE
  "../bench/fig12_chunk_similarity"
  "../bench/fig12_chunk_similarity.pdb"
  "CMakeFiles/fig12_chunk_similarity.dir/fig12_chunk_similarity.cc.o"
  "CMakeFiles/fig12_chunk_similarity.dir/fig12_chunk_similarity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_chunk_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
