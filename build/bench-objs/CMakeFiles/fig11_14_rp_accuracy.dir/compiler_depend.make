# Empty compiler generated dependencies file for fig11_14_rp_accuracy.
# This may be replaced when dependencies are built.
