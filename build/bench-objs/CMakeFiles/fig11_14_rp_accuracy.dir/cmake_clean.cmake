file(REMOVE_RECURSE
  "../bench/fig11_14_rp_accuracy"
  "../bench/fig11_14_rp_accuracy.pdb"
  "CMakeFiles/fig11_14_rp_accuracy.dir/fig11_14_rp_accuracy.cc.o"
  "CMakeFiles/fig11_14_rp_accuracy.dir/fig11_14_rp_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_14_rp_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
