# Empty dependencies file for fig17_bandwidth.
# This may be replaced when dependencies are built.
