file(REMOVE_RECURSE
  "../bench/micro_ldpc"
  "../bench/micro_ldpc.pdb"
  "CMakeFiles/micro_ldpc.dir/micro_ldpc.cc.o"
  "CMakeFiles/micro_ldpc.dir/micro_ldpc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ldpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
