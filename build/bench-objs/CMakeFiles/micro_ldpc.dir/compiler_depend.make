# Empty compiler generated dependencies file for micro_ldpc.
# This may be replaced when dependencies are built.
