# Empty dependencies file for table02_workloads.
# This may be replaced when dependencies are built.
