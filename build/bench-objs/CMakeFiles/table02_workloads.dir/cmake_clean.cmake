file(REMOVE_RECURSE
  "../bench/table02_workloads"
  "../bench/table02_workloads.pdb"
  "CMakeFiles/table02_workloads.dir/table02_workloads.cc.o"
  "CMakeFiles/table02_workloads.dir/table02_workloads.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
