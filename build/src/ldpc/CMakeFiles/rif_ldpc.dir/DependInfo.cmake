
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ldpc/capability.cc" "src/ldpc/CMakeFiles/rif_ldpc.dir/capability.cc.o" "gcc" "src/ldpc/CMakeFiles/rif_ldpc.dir/capability.cc.o.d"
  "/root/repo/src/ldpc/channel.cc" "src/ldpc/CMakeFiles/rif_ldpc.dir/channel.cc.o" "gcc" "src/ldpc/CMakeFiles/rif_ldpc.dir/channel.cc.o.d"
  "/root/repo/src/ldpc/code.cc" "src/ldpc/CMakeFiles/rif_ldpc.dir/code.cc.o" "gcc" "src/ldpc/CMakeFiles/rif_ldpc.dir/code.cc.o.d"
  "/root/repo/src/ldpc/decoder.cc" "src/ldpc/CMakeFiles/rif_ldpc.dir/decoder.cc.o" "gcc" "src/ldpc/CMakeFiles/rif_ldpc.dir/decoder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rif_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
