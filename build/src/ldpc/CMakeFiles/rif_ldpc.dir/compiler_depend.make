# Empty compiler generated dependencies file for rif_ldpc.
# This may be replaced when dependencies are built.
