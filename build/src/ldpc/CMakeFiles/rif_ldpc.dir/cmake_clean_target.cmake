file(REMOVE_RECURSE
  "librif_ldpc.a"
)
