file(REMOVE_RECURSE
  "CMakeFiles/rif_ldpc.dir/capability.cc.o"
  "CMakeFiles/rif_ldpc.dir/capability.cc.o.d"
  "CMakeFiles/rif_ldpc.dir/channel.cc.o"
  "CMakeFiles/rif_ldpc.dir/channel.cc.o.d"
  "CMakeFiles/rif_ldpc.dir/code.cc.o"
  "CMakeFiles/rif_ldpc.dir/code.cc.o.d"
  "CMakeFiles/rif_ldpc.dir/decoder.cc.o"
  "CMakeFiles/rif_ldpc.dir/decoder.cc.o.d"
  "librif_ldpc.a"
  "librif_ldpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rif_ldpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
