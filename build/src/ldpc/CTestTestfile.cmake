# CMake generated Testfile for 
# Source directory: /root/repo/src/ldpc
# Build directory: /root/repo/build/src/ldpc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
