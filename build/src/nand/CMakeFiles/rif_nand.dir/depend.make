# Empty dependencies file for rif_nand.
# This may be replaced when dependencies are built.
