file(REMOVE_RECURSE
  "CMakeFiles/rif_nand.dir/characterization.cc.o"
  "CMakeFiles/rif_nand.dir/characterization.cc.o.d"
  "CMakeFiles/rif_nand.dir/geometry.cc.o"
  "CMakeFiles/rif_nand.dir/geometry.cc.o.d"
  "CMakeFiles/rif_nand.dir/randomizer.cc.o"
  "CMakeFiles/rif_nand.dir/randomizer.cc.o.d"
  "CMakeFiles/rif_nand.dir/rber_model.cc.o"
  "CMakeFiles/rif_nand.dir/rber_model.cc.o.d"
  "CMakeFiles/rif_nand.dir/vref_table.cc.o"
  "CMakeFiles/rif_nand.dir/vref_table.cc.o.d"
  "CMakeFiles/rif_nand.dir/vth_model.cc.o"
  "CMakeFiles/rif_nand.dir/vth_model.cc.o.d"
  "librif_nand.a"
  "librif_nand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rif_nand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
