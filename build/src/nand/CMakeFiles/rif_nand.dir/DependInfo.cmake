
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nand/characterization.cc" "src/nand/CMakeFiles/rif_nand.dir/characterization.cc.o" "gcc" "src/nand/CMakeFiles/rif_nand.dir/characterization.cc.o.d"
  "/root/repo/src/nand/geometry.cc" "src/nand/CMakeFiles/rif_nand.dir/geometry.cc.o" "gcc" "src/nand/CMakeFiles/rif_nand.dir/geometry.cc.o.d"
  "/root/repo/src/nand/randomizer.cc" "src/nand/CMakeFiles/rif_nand.dir/randomizer.cc.o" "gcc" "src/nand/CMakeFiles/rif_nand.dir/randomizer.cc.o.d"
  "/root/repo/src/nand/rber_model.cc" "src/nand/CMakeFiles/rif_nand.dir/rber_model.cc.o" "gcc" "src/nand/CMakeFiles/rif_nand.dir/rber_model.cc.o.d"
  "/root/repo/src/nand/vref_table.cc" "src/nand/CMakeFiles/rif_nand.dir/vref_table.cc.o" "gcc" "src/nand/CMakeFiles/rif_nand.dir/vref_table.cc.o.d"
  "/root/repo/src/nand/vth_model.cc" "src/nand/CMakeFiles/rif_nand.dir/vth_model.cc.o" "gcc" "src/nand/CMakeFiles/rif_nand.dir/vth_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rif_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
