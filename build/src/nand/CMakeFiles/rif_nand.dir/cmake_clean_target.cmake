file(REMOVE_RECURSE
  "librif_nand.a"
)
