file(REMOVE_RECURSE
  "librif_common.a"
)
