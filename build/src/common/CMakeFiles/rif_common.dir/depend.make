# Empty dependencies file for rif_common.
# This may be replaced when dependencies are built.
