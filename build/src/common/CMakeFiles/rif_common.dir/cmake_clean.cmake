file(REMOVE_RECURSE
  "CMakeFiles/rif_common.dir/bitvec.cc.o"
  "CMakeFiles/rif_common.dir/bitvec.cc.o.d"
  "CMakeFiles/rif_common.dir/logging.cc.o"
  "CMakeFiles/rif_common.dir/logging.cc.o.d"
  "CMakeFiles/rif_common.dir/rng.cc.o"
  "CMakeFiles/rif_common.dir/rng.cc.o.d"
  "CMakeFiles/rif_common.dir/stats.cc.o"
  "CMakeFiles/rif_common.dir/stats.cc.o.d"
  "CMakeFiles/rif_common.dir/table.cc.o"
  "CMakeFiles/rif_common.dir/table.cc.o.d"
  "librif_common.a"
  "librif_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rif_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
