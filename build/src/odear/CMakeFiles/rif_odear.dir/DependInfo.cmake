
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/odear/accuracy.cc" "src/odear/CMakeFiles/rif_odear.dir/accuracy.cc.o" "gcc" "src/odear/CMakeFiles/rif_odear.dir/accuracy.cc.o.d"
  "/root/repo/src/odear/datapath.cc" "src/odear/CMakeFiles/rif_odear.dir/datapath.cc.o" "gcc" "src/odear/CMakeFiles/rif_odear.dir/datapath.cc.o.d"
  "/root/repo/src/odear/engine.cc" "src/odear/CMakeFiles/rif_odear.dir/engine.cc.o" "gcc" "src/odear/CMakeFiles/rif_odear.dir/engine.cc.o.d"
  "/root/repo/src/odear/overhead.cc" "src/odear/CMakeFiles/rif_odear.dir/overhead.cc.o" "gcc" "src/odear/CMakeFiles/rif_odear.dir/overhead.cc.o.d"
  "/root/repo/src/odear/rearrange.cc" "src/odear/CMakeFiles/rif_odear.dir/rearrange.cc.o" "gcc" "src/odear/CMakeFiles/rif_odear.dir/rearrange.cc.o.d"
  "/root/repo/src/odear/rp_module.cc" "src/odear/CMakeFiles/rif_odear.dir/rp_module.cc.o" "gcc" "src/odear/CMakeFiles/rif_odear.dir/rp_module.cc.o.d"
  "/root/repo/src/odear/rvs_module.cc" "src/odear/CMakeFiles/rif_odear.dir/rvs_module.cc.o" "gcc" "src/odear/CMakeFiles/rif_odear.dir/rvs_module.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rif_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ldpc/CMakeFiles/rif_ldpc.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/rif_nand.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
