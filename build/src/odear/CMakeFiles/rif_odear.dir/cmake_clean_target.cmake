file(REMOVE_RECURSE
  "librif_odear.a"
)
