file(REMOVE_RECURSE
  "CMakeFiles/rif_odear.dir/accuracy.cc.o"
  "CMakeFiles/rif_odear.dir/accuracy.cc.o.d"
  "CMakeFiles/rif_odear.dir/datapath.cc.o"
  "CMakeFiles/rif_odear.dir/datapath.cc.o.d"
  "CMakeFiles/rif_odear.dir/engine.cc.o"
  "CMakeFiles/rif_odear.dir/engine.cc.o.d"
  "CMakeFiles/rif_odear.dir/overhead.cc.o"
  "CMakeFiles/rif_odear.dir/overhead.cc.o.d"
  "CMakeFiles/rif_odear.dir/rearrange.cc.o"
  "CMakeFiles/rif_odear.dir/rearrange.cc.o.d"
  "CMakeFiles/rif_odear.dir/rp_module.cc.o"
  "CMakeFiles/rif_odear.dir/rp_module.cc.o.d"
  "CMakeFiles/rif_odear.dir/rvs_module.cc.o"
  "CMakeFiles/rif_odear.dir/rvs_module.cc.o.d"
  "librif_odear.a"
  "librif_odear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rif_odear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
