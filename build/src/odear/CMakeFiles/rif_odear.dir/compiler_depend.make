# Empty compiler generated dependencies file for rif_odear.
# This may be replaced when dependencies are built.
