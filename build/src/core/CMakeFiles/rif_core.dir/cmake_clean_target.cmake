file(REMOVE_RECURSE
  "librif_core.a"
)
