# Empty dependencies file for rif_core.
# This may be replaced when dependencies are built.
