file(REMOVE_RECURSE
  "CMakeFiles/rif_core.dir/experiment.cc.o"
  "CMakeFiles/rif_core.dir/experiment.cc.o.d"
  "librif_core.a"
  "librif_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rif_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
