
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssd/config.cc" "src/ssd/CMakeFiles/rif_ssd.dir/config.cc.o" "gcc" "src/ssd/CMakeFiles/rif_ssd.dir/config.cc.o.d"
  "/root/repo/src/ssd/devices.cc" "src/ssd/CMakeFiles/rif_ssd.dir/devices.cc.o" "gcc" "src/ssd/CMakeFiles/rif_ssd.dir/devices.cc.o.d"
  "/root/repo/src/ssd/ftl.cc" "src/ssd/CMakeFiles/rif_ssd.dir/ftl.cc.o" "gcc" "src/ssd/CMakeFiles/rif_ssd.dir/ftl.cc.o.d"
  "/root/repo/src/ssd/policy.cc" "src/ssd/CMakeFiles/rif_ssd.dir/policy.cc.o" "gcc" "src/ssd/CMakeFiles/rif_ssd.dir/policy.cc.o.d"
  "/root/repo/src/ssd/sim.cc" "src/ssd/CMakeFiles/rif_ssd.dir/sim.cc.o" "gcc" "src/ssd/CMakeFiles/rif_ssd.dir/sim.cc.o.d"
  "/root/repo/src/ssd/ssd.cc" "src/ssd/CMakeFiles/rif_ssd.dir/ssd.cc.o" "gcc" "src/ssd/CMakeFiles/rif_ssd.dir/ssd.cc.o.d"
  "/root/repo/src/ssd/stats.cc" "src/ssd/CMakeFiles/rif_ssd.dir/stats.cc.o" "gcc" "src/ssd/CMakeFiles/rif_ssd.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rif_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/rif_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/odear/CMakeFiles/rif_odear.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rif_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ldpc/CMakeFiles/rif_ldpc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
