# Empty dependencies file for rif_ssd.
# This may be replaced when dependencies are built.
