file(REMOVE_RECURSE
  "librif_ssd.a"
)
