file(REMOVE_RECURSE
  "CMakeFiles/rif_ssd.dir/config.cc.o"
  "CMakeFiles/rif_ssd.dir/config.cc.o.d"
  "CMakeFiles/rif_ssd.dir/devices.cc.o"
  "CMakeFiles/rif_ssd.dir/devices.cc.o.d"
  "CMakeFiles/rif_ssd.dir/ftl.cc.o"
  "CMakeFiles/rif_ssd.dir/ftl.cc.o.d"
  "CMakeFiles/rif_ssd.dir/policy.cc.o"
  "CMakeFiles/rif_ssd.dir/policy.cc.o.d"
  "CMakeFiles/rif_ssd.dir/sim.cc.o"
  "CMakeFiles/rif_ssd.dir/sim.cc.o.d"
  "CMakeFiles/rif_ssd.dir/ssd.cc.o"
  "CMakeFiles/rif_ssd.dir/ssd.cc.o.d"
  "CMakeFiles/rif_ssd.dir/stats.cc.o"
  "CMakeFiles/rif_ssd.dir/stats.cc.o.d"
  "librif_ssd.a"
  "librif_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rif_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
