# Empty dependencies file for rif_trace.
# This may be replaced when dependencies are built.
