file(REMOVE_RECURSE
  "librif_trace.a"
)
