file(REMOVE_RECURSE
  "CMakeFiles/rif_trace.dir/trace.cc.o"
  "CMakeFiles/rif_trace.dir/trace.cc.o.d"
  "librif_trace.a"
  "librif_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rif_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
