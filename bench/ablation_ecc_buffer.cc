/**
 * @file
 * Thin legacy shim: this experiment now lives in
 * bench/scenarios/ablation_ecc_buffer.cc as a registered scenario; the historical
 * per-figure binary forwards to it (same output, same
 * `[scale|--quick]` argument). Prefer `rif run ablation_ecc_buffer`.
 */

#include "bench_util.h"
#include "core/scenario.h"

int
main(int argc, char **argv)
{
    return rif::core::runScenarioShim(
        "ablation_ecc_buffer", rif::bench::scaleArg(argc, argv));
}
