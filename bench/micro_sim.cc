/**
 * @file
 * Google-benchmark microbenchmarks of the simulation substrate: event
 * queue throughput, read-script planning, and end-to-end simulated
 * requests per second of the full SSD model.
 */

#include <benchmark/benchmark.h>

#include "core/experiment.h"
#include "ssd/policy.h"
#include "ssd/sim.h"

namespace {

using namespace rif;
using namespace rif::ssd;

void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        Simulator sim;
        int fired = 0;
        for (int i = 0; i < 10000; ++i)
            sim.schedule(static_cast<Tick>((i * 7919) % 1000),
                         [&fired] { ++fired; });
        sim.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_EventQueue);

void
BM_PlanRead(benchmark::State &state)
{
    SsdConfig cfg;
    cfg.policy = static_cast<PolicyKind>(state.range(0));
    const auto bm = makeBehaviorModel(cfg);
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(planRead(cfg, bm, 0.009, rng));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PlanRead)
    ->Arg(static_cast<int>(PolicyKind::Sentinel))
    ->Arg(static_cast<int>(PolicyKind::Rif));

void
BM_FullSsdRun(benchmark::State &state)
{
    // Simulated-requests-per-wall-second of the complete model.
    for (auto _ : state) {
        Experiment e;
        e.withPolicy(PolicyKind::Rif).withPeCycles(1000.0);
        RunScale rs;
        rs.requests = 1000;
        benchmark::DoNotOptimize(e.run("Ali124", rs));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_FullSsdRun)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
