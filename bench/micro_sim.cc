/**
 * @file
 * Google-benchmark microbenchmarks of the simulation substrate: event
 * queue throughput (calendar queue vs the PR-1 binary-heap reference),
 * read-script planning (pooled in-place vs allocating), and end-to-end
 * simulated requests per second of the full SSD model.
 */

#include <benchmark/benchmark.h>

#include <array>
#include <string>

#include "common/parallel.h"
#include "common/pool.h"
#include "core/experiment.h"
#include "ssd/devices.h"
#include "ssd/policy.h"
#include "ssd/sim.h"

namespace {

using namespace rif;
using namespace rif::ssd;

/**
 * Drive either kernel through the same workload: `n` events with a
 * pseudo-random spread of delays, each firing one nop. `Mix` selects the
 * delay pattern:
 *  - Uniform: delays spread over ~1000 ticks (dense same-window load);
 *  - SsdMix:  the delay population a real replay produces (zero-delay
 *    batch pokes, DMA/decode in the tens of microseconds, programs and
 *    erases hundreds of microseconds out).
 */
enum class Mix
{
    Uniform,
    SsdMix,
};

inline Tick
delayFor(Mix mix, int i)
{
    const std::uint32_t h = static_cast<std::uint32_t>(i) * 2654435761u;
    if (mix == Mix::Uniform)
        return h % 1000;
    switch (h % 8) {
      case 0:
      case 1:
        return 0; // batch-formation pokes
      case 2:
      case 3:
        return 13000 + h % 3000; // DMA / decode
      case 4:
      case 5:
        return 7000 + h % 7000; // sense
      case 6:
        return 400000 + h % 50000; // program
      default:
        return 3500000 + h % 100000; // erase
    }
}

template <typename Kernel>
void
BM_QueueKernel(benchmark::State &state)
{
    const Mix mix = static_cast<Mix>(state.range(0));
    constexpr int kEvents = 20000;
    // One long-lived kernel, reused across iterations (schedule() is
    // relative to now(), so a drained simulator keeps working): this
    // measures steady-state throughput, the regime a trace replay
    // spends all its time in, rather than construction cost.
    Kernel sim;
    int fired = 0;
    for (auto _ : state) {
        // Half the events up front, half rescheduled from inside
        // events — the shape of a discrete-event simulation.
        for (int i = 0; i < kEvents / 2; ++i) {
            sim.schedule(delayFor(mix, i), [&sim, &fired, mix, i] {
                ++fired;
                sim.schedule(delayFor(mix, i + kEvents / 2),
                             [&fired] { ++fired; });
            });
        }
        sim.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kEvents);
    state.SetLabel(mix == Mix::Uniform ? "uniform" : "ssd-mix");
}

void
BM_EventQueue(benchmark::State &state)
{
    BM_QueueKernel<Simulator>(state);
}
BENCHMARK(BM_EventQueue)
    ->Arg(static_cast<int>(Mix::Uniform))
    ->Arg(static_cast<int>(Mix::SsdMix));

void
BM_ReferenceEventQueue(benchmark::State &state)
{
    BM_QueueKernel<ReferenceSimulator>(state);
}
BENCHMARK(BM_ReferenceEventQueue)
    ->Arg(static_cast<int>(Mix::Uniform))
    ->Arg(static_cast<int>(Mix::SsdMix));

/**
 * The same workload through the per-channel sharded kernel: 8 device
 * shards, every event tagged onto one of them, each incrementing only
 * its own shard's counter (the confinement contract). Measures the
 * merge/gather/flush overhead of sharded mode relative to
 * BM_EventQueue — and, on multi-core hosts with dense same-tick
 * groups, the concurrent-group payoff.
 */
void
BM_ShardedEventQueue(benchmark::State &state)
{
    const Mix mix = static_cast<Mix>(state.range(0));
    constexpr int kEvents = 20000;
    constexpr int kShards = 8;
    Simulator sim(kShards);
    std::array<int, kShards + 1> fired{};
    for (auto _ : state) {
        for (int i = 0; i < kEvents / 2; ++i) {
            const auto s = static_cast<std::uint32_t>(i % kShards + 1);
            sim.scheduleShard(s, delayFor(mix, i), [&sim, &fired, mix, s,
                                                    i] {
                ++fired[s];
                sim.scheduleShard(s, delayFor(mix, i + kEvents / 2),
                                  [&fired, s] { ++fired[s]; });
            });
        }
        sim.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kEvents);
    state.SetLabel(mix == Mix::Uniform ? "uniform" : "ssd-mix");
}
BENCHMARK(BM_ShardedEventQueue)
    ->Arg(static_cast<int>(Mix::Uniform))
    ->Arg(static_cast<int>(Mix::SsdMix));

/**
 * The same sharded script on a 1-worker thread budget: the kernel
 * auto-collapses to the single-queue path at construction (shard tags
 * route to the one queue), so throughput should match BM_EventQueue
 * rather than paying the merge/gather/flush layer for nothing.
 */
void
BM_ShardedEventQueueCollapsed(benchmark::State &state)
{
    const Mix mix = static_cast<Mix>(state.range(0));
    constexpr int kEvents = 20000;
    constexpr int kShards = 8;
    setGlobalThreadCount(1);
    Simulator sim(kShards);
    std::array<int, kShards + 1> fired{};
    for (auto _ : state) {
        for (int i = 0; i < kEvents / 2; ++i) {
            const auto s = static_cast<std::uint32_t>(i % kShards + 1);
            sim.scheduleShard(s, delayFor(mix, i), [&sim, &fired, mix, s,
                                                    i] {
                ++fired[s];
                sim.scheduleShard(s, delayFor(mix, i + kEvents / 2),
                                  [&fired, s] { ++fired[s]; });
            });
        }
        sim.run();
        benchmark::DoNotOptimize(fired);
    }
    setGlobalThreadCount(0);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kEvents);
    state.SetLabel(std::string(mix == Mix::Uniform ? "uniform"
                                                   : "ssd-mix") +
                   " collapsed=" + (sim.sharded() ? "no" : "yes"));
}
BENCHMARK(BM_ShardedEventQueueCollapsed)
    ->Arg(static_cast<int>(Mix::Uniform))
    ->Arg(static_cast<int>(Mix::SsdMix));

void
BM_PlanRead(benchmark::State &state)
{
    SsdConfig cfg;
    cfg.policy = static_cast<PolicyKind>(state.range(0));
    const auto bm = makeBehaviorModel(cfg);
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(planRead(cfg, bm, 0.009, rng));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PlanRead)
    ->Arg(static_cast<int>(PolicyKind::Sentinel))
    ->Arg(static_cast<int>(PolicyKind::Rif));

/** Heap-allocating PageOp + planRead per page — the PR-1 read path. */
void
BM_PageOpMalloc(benchmark::State &state)
{
    SsdConfig cfg;
    cfg.policy = PolicyKind::Rif;
    const auto bm = makeBehaviorModel(cfg);
    Rng rng(1);
    for (auto _ : state) {
        auto *op = new PageOp;
        op->type = PageOp::Type::Read;
        op->script = planRead(cfg, bm, 0.009, rng);
        benchmark::DoNotOptimize(op);
        delete op;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PageOpMalloc);

/** Pooled PageOp + planReadInto — the zero-alloc steady-state path. */
void
BM_PageOpPooled(benchmark::State &state)
{
    SsdConfig cfg;
    cfg.policy = PolicyKind::Rif;
    const auto bm = makeBehaviorModel(cfg);
    Rng rng(1);
    ObjectPool<PageOp> pool;
    for (auto _ : state) {
        PageOp *op = pool.acquire();
        op->type = PageOp::Type::Read;
        op->phase = 0;
        planReadInto(cfg, bm, 0.009, rng, op->script);
        benchmark::DoNotOptimize(op);
        pool.release(op);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PageOpPooled);

void
BM_FullSsdRun(benchmark::State &state)
{
    // Simulated-requests-per-wall-second of the complete model.
    for (auto _ : state) {
        Experiment e;
        e.withPolicy(PolicyKind::Rif).withPeCycles(1000.0);
        RunScale rs;
        rs.requests = 1000;
        benchmark::DoNotOptimize(e.run("Ali124", rs));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_FullSsdRun)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
