/**
 * @file
 * Thin legacy shim: this experiment now lives in
 * bench/scenarios/table02_workloads.cc as a registered scenario; the historical
 * per-figure binary forwards to it (same output, same
 * `[scale|--quick]` argument). Prefer `rif run table02_workloads`.
 */

#include "bench_util.h"
#include "core/scenario.h"

int
main(int argc, char **argv)
{
    return rif::core::runScenarioShim(
        "table02_workloads", rif::bench::scaleArg(argc, argv));
}
