/**
 * @file
 * Thin legacy shim: this experiment now lives in
 * bench/scenarios/fig17_bandwidth.cc as a registered scenario; the historical
 * per-figure binary forwards to it (same output, same
 * `[scale|--quick]` argument). Prefer `rif run fig17_bandwidth`.
 */

#include "bench_util.h"
#include "core/scenario.h"

int
main(int argc, char **argv)
{
    return rif::core::runScenarioShim(
        "fig17_bandwidth", rif::bench::scaleArg(argc, argv));
}
