/**
 * @file
 * `rif` — the single driver for every paper figure, table and ablation.
 *
 *   rif list                         enumerate registered scenarios
 *   rif run <scenario> [options]     run one scenario
 *   rif run --all [options]          run every scenario in name order
 *   rif help [set]                   usage / the `--set` key reference
 *
 * Options for `run`:
 *   --quick            scale 0.25 (same as the legacy bench flag)
 *   --scale S          multiply default trial/request counts by S
 *   --set k=v          layered config override (repeatable; later wins)
 *   --workload W       workload override for single-workload scenarios
 *   --format F         table (default) | csv | jsonl
 *   --out FILE         write results to FILE instead of stdout
 *   --jobs N           run up to N scenarios concurrently
 *   --cache-dir DIR    persist cached artifacts across invocations
 *   --no-cache         disable every memoization layer
 *
 * With no overrides the table output is byte-identical to the legacy
 * one-binary-per-figure benches at any RIF_THREADS, any --jobs count
 * and any cache state.
 */

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/artifact_cache.h"
#include "core/scenario.h"

namespace {

using namespace rif;
using namespace rif::core;

void
printUsage(std::ostream &os)
{
    os << "usage:\n"
          "  rif list                      list registered scenarios\n"
          "  rif run <scenario> [options]  run one scenario\n"
          "  rif run --all [options]       run every scenario\n"
          "  rif help [set]                this text / --set key "
          "reference\n"
          "\n"
          "run options:\n"
          "  --quick          scale 0.25\n"
          "  --scale S        multiply default trial/request counts by "
          "S (finite, > 0)\n"
          "  --set key=value  config override, e.g. --set "
          "ssd.queueDepth=128 (repeatable)\n"
          "  --workload W     workload override (see `rif run "
          "table02_workloads`)\n"
          "  --format F       table (default) | csv | jsonl\n"
          "  --out FILE       write to FILE instead of stdout\n"
          "  --jobs N         run up to N scenarios concurrently "
          "(output stays in name order)\n"
          "  --cache-dir DIR  persist expensive artifacts (sweeps, "
          "calibrations) across runs\n"
          "  --no-cache       disable artifact memoization (results "
          "are identical either way)\n";
}

int
cmdList()
{
    const auto all = ScenarioRegistry::instance().all();
    std::size_t width = 0;
    for (const Scenario *s : all)
        width = std::max(width, std::string(s->name).size());
    for (const Scenario *s : all) {
        std::string name = s->name;
        name.resize(width, ' ');
        std::cout << name << "  " << s->title << " [" << s->paperRef
                  << "]\n";
    }
    return 0;
}

int
cmdHelp(const std::vector<std::string> &args)
{
    if (!args.empty() && args[0] == "set") {
        std::cout << "--set keys (scenario defaults < --set, later "
                     "--set wins):\n";
        const auto keys = OptionSet::knownKeys();
        std::size_t width = 0;
        for (const auto &k : keys)
            width = std::max(width, std::string(k.key).size());
        for (const auto &k : keys) {
            std::string key = k.key;
            key.resize(width, ' ');
            std::cout << "  " << key << "  " << k.help << "\n";
        }
        return 0;
    }
    printUsage(std::cout);
    return 0;
}

double
parseScale(const std::string &value)
{
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v) || !(v > 0.0))
        fatal("--scale expects a finite positive number, got '", value,
              "'");
    return v;
}

int
parseJobs(const std::string &value)
{
    char *end = nullptr;
    const long v = std::strtol(value.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v < 1 || v > 256)
        fatal("--jobs expects an integer in [1, 256], got '", value,
              "'");
    return static_cast<int>(v);
}

int
cmdRun(const std::vector<std::string> &args)
{
    std::vector<std::string> names;
    bool all = false;
    double scale = 1.0;
    SinkFormat format = SinkFormat::Table;
    std::string out_path;
    OptionSet opts;
    int jobs = 1;

    // Accept both `--flag value` and `--flag=value`.
    auto value_of = [&](const std::string &arg, const std::string &flag,
                        std::size_t &i,
                        std::string &out) {
        if (arg == flag) {
            if (i + 1 >= args.size())
                fatal(flag, " expects a value");
            out = args[++i];
            return true;
        }
        if (arg.rfind(flag + "=", 0) == 0) {
            out = arg.substr(flag.size() + 1);
            return true;
        }
        return false;
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        std::string value;
        if (arg == "--all") {
            all = true;
        } else if (arg == "--quick") {
            scale = 0.25;
        } else if (value_of(arg, "--scale", i, value)) {
            scale = parseScale(value);
        } else if (value_of(arg, "--set", i, value)) {
            opts.addSet(value);
        } else if (value_of(arg, "--workload", i, value)) {
            opts.setWorkload(value);
        } else if (value_of(arg, "--format", i, value)) {
            const auto f = parseSinkFormat(value);
            if (!f)
                fatal("unknown --format '", value,
                      "' (expected table, csv or jsonl)");
            format = *f;
        } else if (value_of(arg, "--out", i, value)) {
            out_path = value;
        } else if (value_of(arg, "--jobs", i, value)) {
            jobs = parseJobs(value);
        } else if (value_of(arg, "--cache-dir", i, value)) {
            ArtifactCache::instance().setDiskDir(value);
        } else if (arg == "--no-cache") {
            ArtifactCache::instance().setEnabled(false);
        } else if (!arg.empty() && arg[0] == '-') {
            fatal("unknown option '", arg, "' (see 'rif help')");
        } else {
            names.push_back(arg);
        }
    }

    std::vector<const Scenario *> selected;
    if (all) {
        if (!names.empty())
            fatal("--all cannot be combined with scenario names");
        selected = ScenarioRegistry::instance().all();
    } else {
        if (names.empty())
            fatal("rif run expects a scenario name or --all "
                  "(see 'rif list')");
        for (const std::string &name : names) {
            const Scenario *s =
                ScenarioRegistry::instance().find(name);
            if (s == nullptr)
                fatal("unknown scenario '", name,
                      "' (see 'rif list')");
            selected.push_back(s);
        }
    }

    std::ofstream file;
    if (!out_path.empty()) {
        file.open(out_path);
        if (!file)
            fatal("cannot open --out file '", out_path, "'");
    }
    std::ostream &os = out_path.empty() ? std::cout : file;

    runScenarios(selected, format, os, scale, opts, jobs);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) {
        printUsage(std::cerr);
        return 1;
    }
    const std::string cmd = args[0];
    args.erase(args.begin());

    if (cmd == "list")
        return cmdList();
    if (cmd == "run")
        return cmdRun(args);
    if (cmd == "help" || cmd == "--help" || cmd == "-h")
        return cmdHelp(args);
    rif::fatal("unknown command '", cmd, "' (see 'rif help')");
}
