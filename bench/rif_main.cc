/**
 * @file
 * `rif` — the single driver for every paper figure, table and ablation.
 *
 *   rif list                         enumerate registered scenarios
 *   rif run <scenario> [options]     run one scenario
 *   rif run --all [options]          run every scenario in name order
 *   rif metrics <scenario> [options] run silently, print the registry
 *   rif help [set]                   usage / the `--set` key reference
 *
 * Options for `run`:
 *   --quick            scale 0.25 (same as the legacy bench flag)
 *   --scale S          multiply default trial/request counts by S
 *   --set k=v          layered config override (repeatable; later wins)
 *   --workload W       workload override for single-workload scenarios
 *   --format F         table (default) | csv | jsonl
 *   --out FILE         write results to FILE instead of stdout
 *   --jobs N           run up to N scenarios concurrently
 *   --cache-dir DIR    persist cached artifacts across invocations
 *   --no-cache         disable every memoization layer
 *   --metrics[=FILE]   append each scenario's metric registry to its
 *                      output, or write all snapshots to FILE as JSON
 *   --trace=FILE       record an event trace of the simulated runs
 *                      (Chrome trace_event JSON; JSONL for *.jsonl)
 *
 * With no overrides the table output is byte-identical to the legacy
 * one-binary-per-figure benches at any RIF_THREADS, any --jobs count
 * and any cache state.
 */

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "core/artifact_cache.h"
#include "core/scenario.h"

namespace {

using namespace rif;
using namespace rif::core;

void
printUsage(std::ostream &os)
{
    os << "usage:\n"
          "  rif list                      list registered scenarios\n"
          "  rif run <scenario> [options]  run one scenario\n"
          "  rif run --all [options]       run every scenario\n"
          "  rif metrics <scenario> [...]  run silently, print the "
          "metric registry\n"
          "  rif help [set]                this text / --set key "
          "reference\n"
          "\n"
          "run options:\n"
          "  --quick          scale 0.25\n"
          "  --scale S        multiply default trial/request counts by "
          "S (finite, > 0)\n"
          "  --set key=value  config override, e.g. --set "
          "ssd.queueDepth=128 (repeatable)\n"
          "  --workload W     workload override (see `rif run "
          "table02_workloads`)\n"
          "  --format F       table (default) | csv | jsonl\n"
          "  --out FILE       write to FILE instead of stdout\n"
          "  --jobs N         run up to N scenarios concurrently "
          "(output stays in name order)\n"
          "  --cache-dir DIR  persist expensive artifacts (sweeps, "
          "calibrations) across runs\n"
          "  --no-cache       disable artifact memoization (results "
          "are identical either way)\n"
          "  --metrics[=FILE] append each scenario's metric registry "
          "to its output,\n"
          "                   or write all snapshots to FILE as JSON\n"
          "  --trace=FILE     record an event trace of the simulated "
          "runs (Chrome\n"
          "                   trace_event JSON; JSONL when FILE ends "
          "in .jsonl)\n";
}

int
cmdList()
{
    const auto all = ScenarioRegistry::instance().all();
    std::size_t width = 0;
    for (const Scenario *s : all)
        width = std::max(width, std::string(s->name).size());
    for (const Scenario *s : all) {
        std::string name = s->name;
        name.resize(width, ' ');
        std::cout << name << "  " << s->title << " [" << s->paperRef
                  << "]\n";
    }
    return 0;
}

int
cmdHelp(const std::vector<std::string> &args)
{
    if (!args.empty() && args[0] == "set") {
        std::cout << "--set keys (scenario defaults < --set, later "
                     "--set wins):\n";
        const auto keys = OptionSet::knownKeys();
        std::size_t width = 0;
        for (const auto &k : keys)
            width = std::max(width, std::string(k.key).size());
        for (const auto &k : keys) {
            std::string key = k.key;
            key.resize(width, ' ');
            std::cout << "  " << key << "  " << k.help << "\n";
        }
        return 0;
    }
    printUsage(std::cout);
    return 0;
}

double
parseScale(const std::string &value)
{
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v) || !(v > 0.0))
        fatal("--scale expects a finite positive number, got '", value,
              "'");
    return v;
}

int
parseJobs(const std::string &value)
{
    char *end = nullptr;
    const long v = std::strtol(value.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || v < 1 || v > 256)
        fatal("--jobs expects an integer in [1, 256], got '", value,
              "'");
    return static_cast<int>(v);
}

/** Everything `rif run` / `rif metrics` parse from their arguments. */
struct RunArgs
{
    std::vector<std::string> names;
    bool all = false;
    double scale = 1.0;
    SinkFormat format = SinkFormat::Table;
    std::string out_path;
    OptionSet opts;
    int jobs = 1;
    ObservabilityOptions obs;
};

RunArgs
parseRunArgs(const std::vector<std::string> &args, const char *command)
{
    RunArgs a;

    // Accept both `--flag value` and `--flag=value`.
    auto value_of = [&](const std::string &arg, const std::string &flag,
                        std::size_t &i,
                        std::string &out) {
        if (arg == flag) {
            if (i + 1 >= args.size())
                fatal(flag, " expects a value");
            out = args[++i];
            return true;
        }
        if (arg.rfind(flag + "=", 0) == 0) {
            out = arg.substr(flag.size() + 1);
            return true;
        }
        return false;
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        std::string value;
        if (arg == "--all") {
            a.all = true;
        } else if (arg == "--quick") {
            a.scale = 0.25;
        } else if (arg == "--metrics") {
            a.obs.metricsTable = true;
        } else if (arg.rfind("--metrics=", 0) == 0) {
            a.obs.metricsPath = arg.substr(std::string("--metrics=").size());
            if (a.obs.metricsPath.empty())
                fatal("--metrics= expects a file path");
        } else if (value_of(arg, "--trace", i, value)) {
            a.obs.tracePath = value;
        } else if (value_of(arg, "--scale", i, value)) {
            a.scale = parseScale(value);
        } else if (value_of(arg, "--set", i, value)) {
            a.opts.addSet(value);
        } else if (value_of(arg, "--workload", i, value)) {
            a.opts.setWorkload(value);
        } else if (value_of(arg, "--format", i, value)) {
            const auto f = parseSinkFormat(value);
            if (!f)
                fatal("unknown --format '", value,
                      "' (expected table, csv or jsonl)");
            a.format = *f;
        } else if (value_of(arg, "--out", i, value)) {
            a.out_path = value;
        } else if (value_of(arg, "--jobs", i, value)) {
            a.jobs = parseJobs(value);
        } else if (value_of(arg, "--cache-dir", i, value)) {
            ArtifactCache::instance().setDiskDir(value);
        } else if (arg == "--no-cache") {
            ArtifactCache::instance().setEnabled(false);
        } else if (!arg.empty() && arg[0] == '-') {
            fatal("unknown option '", arg, "' (see 'rif help')");
        } else {
            a.names.push_back(arg);
        }
    }

    if (a.all && !a.names.empty())
        fatal("--all cannot be combined with scenario names");
    if (!a.all && a.names.empty())
        fatal("rif ", command,
              " expects a scenario name or --all (see 'rif list')");
    return a;
}

std::vector<const Scenario *>
selectScenarios(const RunArgs &a)
{
    if (a.all)
        return ScenarioRegistry::instance().all();
    std::vector<const Scenario *> selected;
    for (const std::string &name : a.names) {
        const Scenario *s = ScenarioRegistry::instance().find(name);
        if (s == nullptr)
            fatal("unknown scenario '", name, "' (see 'rif list')");
        selected.push_back(s);
    }
    return selected;
}

int
cmdRun(const std::vector<std::string> &args)
{
    const RunArgs a = parseRunArgs(args, "run");
    const auto selected = selectScenarios(a);

    std::ofstream file;
    if (!a.out_path.empty()) {
        file.open(a.out_path);
        if (!file)
            fatal("cannot open --out file '", a.out_path, "'");
    }
    std::ostream &os = a.out_path.empty() ? std::cout : file;

    runScenarios(selected, a.format, os, a.scale, a.opts, a.jobs, a.obs);
    return 0;
}

/**
 * `rif metrics <scenario>`: run the scenario body through a NullSink —
 * discarding its figures — and print only the metric registry through
 * the selected ResultSink format.
 */
int
cmdMetrics(const std::vector<std::string> &args)
{
    const RunArgs a = parseRunArgs(args, "metrics");
    const auto selected = selectScenarios(a);

    std::ofstream file;
    if (!a.out_path.empty()) {
        file.open(a.out_path);
        if (!file)
            fatal("cannot open --out file '", a.out_path, "'");
    }
    std::ostream &os = a.out_path.empty() ? std::cout : file;

    const auto sink = makeSink(a.format, os);
    for (const Scenario *s : selected) {
        metrics::MetricsScope scope;
        NullSink null;
        runScenario(*s, null, a.scale, a.opts);
        sink->table(scope.finish().toTable(std::string("metrics: ") +
                                           s->name));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) {
        printUsage(std::cerr);
        return 1;
    }
    const std::string cmd = args[0];
    args.erase(args.begin());

    if (cmd == "list")
        return cmdList();
    if (cmd == "run")
        return cmdRun(args);
    if (cmd == "metrics")
        return cmdMetrics(args);
    if (cmd == "help" || cmd == "--help" || cmd == "-h")
        return cmdHelp(args);
    rif::fatal("unknown command '", cmd, "' (see 'rif help')");
}
