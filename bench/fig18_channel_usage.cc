/**
 * @file
 * Fig. 18 — flash-channel usage breakdown (IDLE / COR / UNCOR /
 * ECCWAIT) for the two most read-intensive workloads, Ali121 and
 * Ali124, across wear levels and policies. The paper highlights SWR
 * wasting 54.4% of the channel in UNCOR+ECCWAIT on Ali124 at 2K P/E,
 * while RiF wastes 1.8% (vs RPSSD's 19.9% on Ali121) under UNCOR.
 */

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "core/experiment.h"

int
main(int argc, char **argv)
{
    using namespace rif;
    using namespace rif::ssd;

    const double scale = bench::scaleArg(argc, argv);
    bench::header("Channel usage breakdown",
                  "Fig. 18 (Ali121 / Ali124)");

    RunScale rs;
    rs.requests = bench::scaled(5000, scale);

    const PolicyKind policies[] = {
        PolicyKind::Sentinel, PolicyKind::SwiftRead,
        PolicyKind::SwiftReadPlus, PolicyKind::RpController,
        PolicyKind::Rif};
    const double pes[] = {0.0, 1000.0, 2000.0};

    for (const char *w : {"Ali121", "Ali124"}) {
        Table t(std::string("Fig. 18: channel usage ratio, ") + w);
        t.setHeader({"P/E", "policy", "IDLE", "COR", "UNCOR", "ECCWAIT",
                     "WRITE"});
        for (double pe : pes) {
            for (PolicyKind p : policies) {
                Experiment e;
                e.withPolicy(p).withPeCycles(pe);
                const auto r = e.run(w, rs);
                const auto &st = r.stats;
                t.addRow({Table::num(pe, 0), policyName(p),
                          Table::num(
                              st.channelFraction(ChannelState::Idle), 2),
                          Table::num(
                              st.channelFraction(ChannelState::CorXfer),
                              2),
                          Table::num(st.channelFraction(
                                         ChannelState::UncorXfer),
                                     2),
                          Table::num(
                              st.channelFraction(ChannelState::EccWait),
                              2),
                          Table::num(st.channelFraction(
                                         ChannelState::WriteXfer),
                                     2)});
            }
        }
        t.print(std::cout);
        std::cout << '\n';
    }

    std::cout <<
        "Paper shape: off-chip policies waste a growing UNCOR+ECCWAIT "
        "share with\nwear; RPSSD eliminates ECCWAIT but keeps UNCOR; "
        "RiF eliminates both and\nspends the channel almost entirely "
        "on correctable transfers.\n";
    return 0;
}
