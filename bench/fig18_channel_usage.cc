/**
 * @file
 * Thin legacy shim: this experiment now lives in
 * bench/scenarios/fig18_channel_usage.cc as a registered scenario; the historical
 * per-figure binary forwards to it (same output, same
 * `[scale|--quick]` argument). Prefer `rif run fig18_channel_usage`.
 */

#include "bench_util.h"
#include "core/scenario.h"

int
main(int argc, char **argv)
{
    return rif::core::runScenarioShim(
        "fig18_channel_usage", rif::bench::scaleArg(argc, argv));
}
