/**
 * @file
 * Google-benchmark microbenchmarks of the LDPC substrate: encoding,
 * syndrome computation (full and pruned, i.e. the ODEAR datapath's
 * work), and min-sum decoding at easy/threshold/hopeless RBER. The
 * Reference* variants time the retained per-edge kernels so the
 * word-parallel speedup is measured in-tree, and BM_ParallelDecode
 * times the thread-pool Monte-Carlo harness end to end.
 */

#include <benchmark/benchmark.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "ldpc/batch.h"
#include "ldpc/channel.h"
#include "ldpc/code.h"
#include "ldpc/decoder.h"
#include "odear/rearrange.h"

namespace {

using namespace rif;
using namespace rif::ldpc;

const QcLdpcCode &
theCode()
{
    static const QcLdpcCode code(paperCode());
    return code;
}

void
BM_Encode(benchmark::State &state)
{
    const QcLdpcCode &code = theCode();
    Rng rng(1);
    const HardWord data = randomData(code.params().k(), rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(code.encode(data));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(code.params().k() / 8));
}
BENCHMARK(BM_Encode);

void
BM_ReferenceEncode(benchmark::State &state)
{
    // The retired per-edge encoder, kept for equivalence testing.
    const QcLdpcCode &code = theCode();
    Rng rng(1);
    const HardWord data = randomData(code.params().k(), rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(code.referenceEncode(data));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(code.params().k() / 8));
}
BENCHMARK(BM_ReferenceEncode);

void
BM_RandomData(benchmark::State &state)
{
    // Word-wise fill: one rng.next() per 64 bits expanded through the
    // bit-lane table instead of 64 byte stores.
    const QcLdpcCode &code = theCode();
    Rng rng(7);
    HardWord d(code.params().k());
    for (auto _ : state) {
        randomDataInto(d, rng);
        benchmark::DoNotOptimize(d.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(code.params().k() / 8));
}
BENCHMARK(BM_RandomData);

void
BM_InjectErrors(benchmark::State &state)
{
    // Fixed-weight injection; Arg = error count. The bitmap membership
    // test replaces a per-call unordered_set.
    const QcLdpcCode &code = theCode();
    Rng rng(8);
    HardWord word = code.encode(randomData(code.params().k(), rng));
    const auto count = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        injectExactErrors(word, count, rng);
        benchmark::DoNotOptimize(word.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(count));
}
BENCHMARK(BM_InjectErrors)->Arg(64)->Arg(256);

void
BM_FullSyndromeWeight(benchmark::State &state)
{
    const QcLdpcCode &code = theCode();
    Rng rng(2);
    HardWord word = code.encode(randomData(code.params().k(), rng));
    injectErrors(word, 0.005, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(code.syndromeWeight(word));
}
BENCHMARK(BM_FullSyndromeWeight);

void
BM_ReferenceSyndrome(benchmark::State &state)
{
    const QcLdpcCode &code = theCode();
    Rng rng(2);
    HardWord word = code.encode(randomData(code.params().k(), rng));
    injectErrors(word, 0.005, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(code.referenceSyndrome(word));
}
BENCHMARK(BM_ReferenceSyndrome);

void
BM_PrunedSyndromeWeight(benchmark::State &state)
{
    const QcLdpcCode &code = theCode();
    Rng rng(3);
    HardWord word = code.encode(randomData(code.params().k(), rng));
    injectErrors(word, 0.005, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(code.prunedSyndromeWeight(word));
}
BENCHMARK(BM_PrunedSyndromeWeight);

void
BM_OnDieSyndromeWeight(benchmark::State &state)
{
    // The rotated-layout XOR+popcount the RP hardware performs.
    const QcLdpcCode &code = theCode();
    const odear::CodewordRearranger rr(code);
    Rng rng(4);
    HardWord word = code.encode(randomData(code.params().k(), rng));
    injectErrors(word, 0.005, rng);
    const BitVec flash = rr.toFlashLayout(toBitVec(word));
    for (auto _ : state)
        benchmark::DoNotOptimize(rr.onDieSyndromeWeight(flash));
}
BENCHMARK(BM_OnDieSyndromeWeight);

void
BM_MinSumDecode(benchmark::State &state)
{
    const QcLdpcCode &code = theCode();
    const MinSumDecoder dec(code, 20);
    const double rber = static_cast<double>(state.range(0)) * 1e-4;
    Rng rng(5);
    HardWord word = code.encode(randomData(code.params().k(), rng));
    injectErrors(word, rber, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(dec.decode(word, rber));
}
// 0.002 (easy), 0.008 (near capability), 0.012 (fails at 20 iters).
BENCHMARK(BM_MinSumDecode)->Arg(20)->Arg(80)->Arg(120);

void
BM_MinSumDecodeWorkspace(benchmark::State &state)
{
    // Caller-owned workspace: zero heap allocation in steady state.
    const QcLdpcCode &code = theCode();
    const MinSumDecoder dec(code, 20);
    const double rber = static_cast<double>(state.range(0)) * 1e-4;
    Rng rng(5);
    HardWord word = code.encode(randomData(code.params().k(), rng));
    injectErrors(word, rber, rng);
    DecodeWorkspace ws;
    for (auto _ : state)
        benchmark::DoNotOptimize(dec.decode(word, rber, ws));
}
BENCHMARK(BM_MinSumDecodeWorkspace)->Arg(20)->Arg(80);

void
BM_SyndromeBatch(benchmark::State &state)
{
    // Batched full syndrome weight; Arg = lanes. Per-item time against
    // BM_FullSyndromeWeight is the SoA datapath's speedup per word.
    const QcLdpcCode &code = theCode();
    const auto lanes = static_cast<std::size_t>(state.range(0));
    Rng rng(2);
    CodewordBatch batch(code.params().n(), lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
        HardWord word = code.encode(randomData(code.params().k(), rng));
        injectErrors(word, 0.005, rng);
        batch.setLaneFromBytes(l, word.data(), word.size());
    }
    CodewordBatch synd;
    std::vector<std::size_t> weights(lanes);
    for (auto _ : state) {
        syndromeWeightBatch(code, batch, synd, weights.data());
        benchmark::DoNotOptimize(weights.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(lanes));
}
BENCHMARK(BM_SyndromeBatch)->Arg(1)->Arg(8)->Arg(64);

void
BM_PrunedSyndromeBatch(benchmark::State &state)
{
    // Batched pruned (block row 0) weight — the RP datapath per lane.
    const QcLdpcCode &code = theCode();
    const auto lanes = static_cast<std::size_t>(state.range(0));
    Rng rng(3);
    CodewordBatch batch(code.params().n(), lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
        HardWord word = code.encode(randomData(code.params().k(), rng));
        injectErrors(word, 0.005, rng);
        batch.setLaneFromBytes(l, word.data(), word.size());
    }
    CodewordBatch synd;
    std::vector<std::size_t> weights(lanes);
    for (auto _ : state) {
        prunedSyndromeWeightBatch(code, batch, synd, weights.data());
        benchmark::DoNotOptimize(weights.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(lanes));
}
BENCHMARK(BM_PrunedSyndromeBatch)->Arg(1)->Arg(8)->Arg(64);

void
BM_DecodeBatch(benchmark::State &state)
{
    // Batched min-sum over `lanes` distinct words at one RBER; per-item
    // time against BM_MinSumDecodeWorkspace at the same RBER (60 =
    // 0.006) is the lockstep datapath's per-word speedup.
    const QcLdpcCode &code = theCode();
    const MinSumDecoder dec(code, 20);
    const auto lanes = static_cast<std::size_t>(state.range(0));
    const double rber = 0.006;
    Rng rng(5);
    std::vector<HardWord> words(lanes);
    std::vector<const HardWord *> ptrs(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
        words[l] = code.encode(randomData(code.params().k(), rng));
        injectErrors(words[l], rber, rng);
        ptrs[l] = &words[l];
    }
    BatchDecodeWorkspace ws;
    std::vector<DecodeResult> results(lanes);
    for (auto _ : state) {
        dec.decodeBatch(ptrs.data(), lanes, rber, ws, results.data());
        benchmark::DoNotOptimize(results.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(lanes));
}
BENCHMARK(BM_DecodeBatch)->Arg(1)->Arg(8)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void
BM_MinSumDecodeLoop(benchmark::State &state)
{
    // The scalar counterpart of BM_DecodeBatch: the same words decoded
    // one by one through a caller-owned workspace.
    const QcLdpcCode &code = theCode();
    const MinSumDecoder dec(code, 20);
    const auto lanes = static_cast<std::size_t>(state.range(0));
    const double rber = 0.006;
    Rng rng(5);
    std::vector<HardWord> words(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
        words[l] = code.encode(randomData(code.params().k(), rng));
        injectErrors(words[l], rber, rng);
    }
    DecodeWorkspace ws;
    std::vector<DecodeResult> results(lanes);
    for (auto _ : state) {
        for (std::size_t l = 0; l < lanes; ++l)
            results[l] = dec.decode(words[l], rber, ws);
        benchmark::DoNotOptimize(results.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(lanes));
}
BENCHMARK(BM_MinSumDecodeLoop)->Arg(8)->Unit(benchmark::kMillisecond);

void
BM_ParallelDecode(benchmark::State &state)
{
    // End-to-end Monte-Carlo throughput of the thread-pool harness:
    // 32 independent decodes per iteration, deterministic per-index
    // streams, per-worker workspaces. Arg = thread count.
    const QcLdpcCode &code = theCode();
    const MinSumDecoder dec(code, 20);
    const double rber = 0.006;
    setGlobalThreadCount(static_cast<int>(state.range(0)));

    constexpr std::size_t kBatch = 32;
    Rng master(6);
    std::vector<HardWord> words(kBatch);
    for (auto &w : words) {
        w = code.encode(randomData(code.params().k(), master));
        injectErrors(w, rber, master);
    }
    std::vector<DecodeWorkspace> scratch(globalThreadCount());
    std::vector<int> iters(kBatch, 0);
    for (auto _ : state) {
        parallelForWorker(kBatch, [&](std::size_t i, int worker) {
            iters[i] = dec.decode(words[i], rber, scratch[worker]).iterations;
        });
        benchmark::DoNotOptimize(iters.data());
    }
    setGlobalThreadCount(0);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kBatch);
}
BENCHMARK(BM_ParallelDecode)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
