/**
 * @file
 * Google-benchmark microbenchmarks of the LDPC substrate: encoding,
 * syndrome computation (full and pruned, i.e. the ODEAR datapath's
 * work), and min-sum decoding at easy/threshold/hopeless RBER. The
 * Reference* variants time the retained per-edge kernels so the
 * word-parallel speedup is measured in-tree, and BM_ParallelDecode
 * times the thread-pool Monte-Carlo harness end to end.
 */

#include <benchmark/benchmark.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "ldpc/channel.h"
#include "ldpc/code.h"
#include "ldpc/decoder.h"
#include "odear/rearrange.h"

namespace {

using namespace rif;
using namespace rif::ldpc;

const QcLdpcCode &
theCode()
{
    static const QcLdpcCode code(paperCode());
    return code;
}

void
BM_Encode(benchmark::State &state)
{
    const QcLdpcCode &code = theCode();
    Rng rng(1);
    const HardWord data = randomData(code.params().k(), rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(code.encode(data));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(code.params().k() / 8));
}
BENCHMARK(BM_Encode);

void
BM_ReferenceEncode(benchmark::State &state)
{
    // The retired per-edge encoder, kept for equivalence testing.
    const QcLdpcCode &code = theCode();
    Rng rng(1);
    const HardWord data = randomData(code.params().k(), rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(code.referenceEncode(data));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(code.params().k() / 8));
}
BENCHMARK(BM_ReferenceEncode);

void
BM_RandomData(benchmark::State &state)
{
    // Word-wise fill: one rng.next() per 64 bits expanded through the
    // bit-lane table instead of 64 byte stores.
    const QcLdpcCode &code = theCode();
    Rng rng(7);
    HardWord d(code.params().k());
    for (auto _ : state) {
        randomDataInto(d, rng);
        benchmark::DoNotOptimize(d.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(code.params().k() / 8));
}
BENCHMARK(BM_RandomData);

void
BM_InjectErrors(benchmark::State &state)
{
    // Fixed-weight injection; Arg = error count. The bitmap membership
    // test replaces a per-call unordered_set.
    const QcLdpcCode &code = theCode();
    Rng rng(8);
    HardWord word = code.encode(randomData(code.params().k(), rng));
    const auto count = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        injectExactErrors(word, count, rng);
        benchmark::DoNotOptimize(word.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(count));
}
BENCHMARK(BM_InjectErrors)->Arg(64)->Arg(256);

void
BM_FullSyndromeWeight(benchmark::State &state)
{
    const QcLdpcCode &code = theCode();
    Rng rng(2);
    HardWord word = code.encode(randomData(code.params().k(), rng));
    injectErrors(word, 0.005, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(code.syndromeWeight(word));
}
BENCHMARK(BM_FullSyndromeWeight);

void
BM_ReferenceSyndrome(benchmark::State &state)
{
    const QcLdpcCode &code = theCode();
    Rng rng(2);
    HardWord word = code.encode(randomData(code.params().k(), rng));
    injectErrors(word, 0.005, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(code.referenceSyndrome(word));
}
BENCHMARK(BM_ReferenceSyndrome);

void
BM_PrunedSyndromeWeight(benchmark::State &state)
{
    const QcLdpcCode &code = theCode();
    Rng rng(3);
    HardWord word = code.encode(randomData(code.params().k(), rng));
    injectErrors(word, 0.005, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(code.prunedSyndromeWeight(word));
}
BENCHMARK(BM_PrunedSyndromeWeight);

void
BM_OnDieSyndromeWeight(benchmark::State &state)
{
    // The rotated-layout XOR+popcount the RP hardware performs.
    const QcLdpcCode &code = theCode();
    const odear::CodewordRearranger rr(code);
    Rng rng(4);
    HardWord word = code.encode(randomData(code.params().k(), rng));
    injectErrors(word, 0.005, rng);
    const BitVec flash = rr.toFlashLayout(toBitVec(word));
    for (auto _ : state)
        benchmark::DoNotOptimize(rr.onDieSyndromeWeight(flash));
}
BENCHMARK(BM_OnDieSyndromeWeight);

void
BM_MinSumDecode(benchmark::State &state)
{
    const QcLdpcCode &code = theCode();
    const MinSumDecoder dec(code, 20);
    const double rber = static_cast<double>(state.range(0)) * 1e-4;
    Rng rng(5);
    HardWord word = code.encode(randomData(code.params().k(), rng));
    injectErrors(word, rber, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(dec.decode(word, rber));
}
// 0.002 (easy), 0.008 (near capability), 0.012 (fails at 20 iters).
BENCHMARK(BM_MinSumDecode)->Arg(20)->Arg(80)->Arg(120);

void
BM_MinSumDecodeWorkspace(benchmark::State &state)
{
    // Caller-owned workspace: zero heap allocation in steady state.
    const QcLdpcCode &code = theCode();
    const MinSumDecoder dec(code, 20);
    const double rber = static_cast<double>(state.range(0)) * 1e-4;
    Rng rng(5);
    HardWord word = code.encode(randomData(code.params().k(), rng));
    injectErrors(word, rber, rng);
    DecodeWorkspace ws;
    for (auto _ : state)
        benchmark::DoNotOptimize(dec.decode(word, rber, ws));
}
BENCHMARK(BM_MinSumDecodeWorkspace)->Arg(20)->Arg(80);

void
BM_ParallelDecode(benchmark::State &state)
{
    // End-to-end Monte-Carlo throughput of the thread-pool harness:
    // 32 independent decodes per iteration, deterministic per-index
    // streams, per-worker workspaces. Arg = thread count.
    const QcLdpcCode &code = theCode();
    const MinSumDecoder dec(code, 20);
    const double rber = 0.006;
    setGlobalThreadCount(static_cast<int>(state.range(0)));

    constexpr std::size_t kBatch = 32;
    Rng master(6);
    std::vector<HardWord> words(kBatch);
    for (auto &w : words) {
        w = code.encode(randomData(code.params().k(), master));
        injectErrors(w, rber, master);
    }
    std::vector<DecodeWorkspace> scratch(globalThreadCount());
    std::vector<int> iters(kBatch, 0);
    for (auto _ : state) {
        parallelForWorker(kBatch, [&](std::size_t i, int worker) {
            iters[i] = dec.decode(words[i], rber, scratch[worker]).iterations;
        });
        benchmark::DoNotOptimize(iters.data());
    }
    setGlobalThreadCount(0);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kBatch);
}
BENCHMARK(BM_ParallelDecode)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
