/**
 * @file
 * Thin legacy shim: this experiment now lives in
 * bench/scenarios/fig11_14_rp_accuracy.cc as a registered scenario; the historical
 * per-figure binary forwards to it (same output, same
 * `[scale|--quick]` argument). Prefer `rif run fig11_14_rp_accuracy`.
 */

#include "bench_util.h"
#include "core/scenario.h"

int
main(int argc, char **argv)
{
    return rif::core::runScenarioShim(
        "fig11_14_rp_accuracy", rif::bench::scaleArg(argc, argv));
}
