/**
 * @file
 * Fleet scaling: the same workload replayed on 1, 4 and 16 drives.
 * Reports the drive-parallel simulator's deterministic load profile —
 * kernel events, conservative synchronization rounds — alongside the
 * modeled makespan and IOPS, so the EXPERIMENTS.md wall-clock table
 * (events/s at RIF_THREADS=1/2/8) has a stable events denominator.
 * All emitted values are simulated quantities: the sink output is
 * byte-identical at any RIF_THREADS / --jobs setting.
 */

#include <string>

#include "common/metrics.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "fabric/fleet.h"

namespace {

using namespace rif;

void
run(core::ScenarioContext &ctx)
{
    const std::string wl = ctx.workload("Ali124");

    RunScale rs;
    rs.requests = ctx.scaled(20000);
    ctx.apply(rs);

    Table t("Fleet scaling (" + wl + ", RiFSSD @ 2K P/E, striped)");
    t.setHeader({"drives", "commands", "sub_ios", "sync_rounds",
                 "drive_events", "makespan(ms)", "IOPS"});

    for (const int drives : {1, 4, 16}) {
        fabric::FleetConfig fc;
        fc.qd = 256;
        ctx.apply(fc);
        // The drive count is the sweep variable, not an override knob
        // (Fleet re-validates the combination).
        fc.drives = drives;

        ssd::SsdConfig cfg;
        cfg.policy = ssd::PolicyKind::Rif;
        cfg.peCycles = 2000.0;
        ctx.apply(cfg);

        trace::SyntheticWorkload source(trace::workloadByName(wl),
                                        rs.requests, rs.seed);
        fabric::Fleet fleet(cfg, fc);
        metrics::MetricsScope scope;
        const fabric::FleetStats fs = fleet.run(source);
        scope.finish();

        t.addRow({std::to_string(fc.drives), Table::num(fs.commands),
                  Table::num(fs.subIos), Table::num(fs.syncRounds),
                  Table::num(fs.driveEvents),
                  Table::num(ticksToMs(fs.makespan), 2),
                  Table::num(fs.iops(), 0)});
    }
    ctx.sink.table(t);
    ctx.sink.text(
        "\nEach drive advances on its own event lane between "
        "interconnect-crossing\nbarriers, so wall-clock (not shown: "
        "host-dependent) shrinks with\nRIF_THREADS while every number "
        "above stays bit-identical.\n");
}

} // namespace

RIF_REGISTER_SCENARIO(fleet_scaling,
                      "Fleet scaling: drive-parallel simulation",
                      "drive-parallel DES throughput study",
                      run);
