/**
 * @file
 * Fleet tail latency (rack-scale extension of Fig. 17/19): N drives
 * behind a modeled interconnect replay one workload closed-loop at a
 * fleet-wide queue depth; the host-observed read p50/p99/p99.9 compare
 * RiFSSD against the conventional fixed-sequence retry at a wear point
 * where retries dominate the tail. `--set fleet.drives/fleet.qd/
 * fleet.placement` resize the rack.
 */

#include <string>

#include "common/metrics.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "fabric/fleet.h"

namespace {

using namespace rif;

void
run(core::ScenarioContext &ctx)
{
    const std::string wl = ctx.workload("Ali124");

    RunScale rs;
    rs.requests = ctx.scaled(20000);
    ctx.apply(rs);

    fabric::FleetConfig fc;
    fc.drives = 4;
    fc.qd = 256;
    ctx.apply(fc);

    Table t("Fleet read tail latency (" + wl + ", " +
            std::to_string(fc.drives) + " drives, " +
            fabric::placementName(fc.placement) + ", QD " +
            std::to_string(fc.qd) + " @ 3K P/E)");
    t.setHeader({"policy", "p50(us)", "p99(us)", "p99.9(us)", "IOPS",
                 "retried_reads"});

    for (ssd::PolicyKind policy :
         {ssd::PolicyKind::FixedSequence, ssd::PolicyKind::Rif}) {
        ssd::SsdConfig cfg;
        cfg.policy = policy;
        cfg.peCycles = 3000.0;
        ctx.apply(cfg);

        trace::SyntheticWorkload source(trace::workloadByName(wl),
                                        rs.requests, rs.seed);
        fabric::Fleet fleet(cfg, fc);
        metrics::MetricsScope scope;
        const fabric::FleetStats fs = fleet.run(source);
        scope.finish();

        std::uint64_t retried = 0;
        for (const ssd::SsdStats &d : fs.drives)
            retried += d.retriedReads;
        t.addRow({ssd::policyName(policy),
                  Table::num(fs.readLatencyUs.percentile(50), 1),
                  Table::num(fs.readLatencyUs.percentile(99), 1),
                  Table::num(fs.readLatencyUs.percentile(99.9), 1),
                  Table::num(fs.iops(), 0), Table::num(retried)});
    }
    ctx.sink.table(t);
    ctx.sink.text(
        "\nAt rack scale a single slow read stalls a whole striped "
        "command, so the\nfleet p99/p99.9 amplify per-drive retry "
        "latency; RiF's on-die early retry\npulls the fleet tail close "
        "to its median.\n");
}

} // namespace

RIF_REGISTER_SCENARIO(fleet_p99,
                      "Fleet tail latency: RiF vs conventional retry",
                      "rack-scale extension of Fig. 17/19",
                      run);
