/**
 * @file
 * Real-trace replay: stream a block-trace file (native CSV,
 * MSR-Cambridge or Alibaba dialect) through the device under its own
 * arrival timestamps and compare the conventional fixed-sequence retry
 * against RiF on host-observed read latency. With no
 * `--set workload.trace=<file>` a deterministic sample trace is
 * generated on the fly, so the scenario doubles as an end-to-end smoke
 * of the streaming reader + open-loop injection path.
 */

#include <cstdio>
#include <fstream>
#include <string>

#include <unistd.h>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "ssd/arrival.h"
#include "ssd/ssd.h"
#include "trace/stream.h"
#include "trace/workload.h"

namespace {

using namespace rif;

/**
 * Generate a deterministic sample trace: a Zipf-hot read-mostly
 * workload paced by a Poisson process, in the native CSV dialect with
 * an arrival_us column. The path is pid-qualified (parallel test jobs
 * never collide) and deliberately never printed, so scenario output
 * does not depend on the host.
 */
std::string
writeSampleTrace(std::uint64_t requests, std::uint64_t seed)
{
    const std::string path = "/tmp/rif_trace_replay_" +
                             std::to_string(::getpid()) + ".csv";
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        fatal("trace_replay: cannot write sample trace '", path, "'");

    Rng rng(seed ^ 0x7ace5eedull);
    const ZipfSampler hot(30000, 0.9);
    double cursor_us = 0.0;
    out << "# sample trace: R|W,lpn,pages,arrival_us\n";
    for (std::uint64_t i = 0; i < requests; ++i) {
        const bool is_read = rng.chance(0.85);
        const std::uint64_t lpn = hot.sample(rng);
        const std::uint64_t pages = 1 + rng.below(4);
        cursor_us += rng.exponential(0.06); // ~60 kIOPS offered
        out << (is_read ? 'R' : 'W') << ',' << lpn << ',' << pages << ','
            << cursor_us << '\n';
    }
    return path;
}

void
run(core::ScenarioContext &ctx)
{
    RunScale rs;
    rs.requests = ctx.scaled(12000);
    ctx.apply(rs);

    trace::WorkloadConfig wc;
    wc.arrival = "timestamp";
    ctx.apply(wc);

    std::string temp_path;
    if (wc.trace.empty())
        wc.trace = temp_path = writeSampleTrace(rs.requests, rs.seed);

    trace::TraceFormat fmt;
    if (wc.format == "auto")
        fmt = trace::detectTraceFormat(wc.trace);
    else if (!trace::parseTraceFormat(wc.format, fmt))
        fatal("trace_replay: unknown trace format '", wc.format, "'");
    const trace::TraceScan scan = trace::scanTraceFile(wc.trace, fmt);

    Table t("Trace replay (" + std::string(trace::traceFormatName(fmt)) +
            ", " + Table::num(scan.records) + " records, " +
            Table::num(100.0 * static_cast<double>(scan.readRecords) /
                           static_cast<double>(scan.records),
                       0) +
            "% reads, span " + Table::num(ticksToUs(scan.span) / 1e3, 1) +
            " ms, arrival=" + wc.arrival + " @ 3K P/E)");
    t.setHeader({"policy", "p50(us)", "p99(us)", "p99.9(us)", "IOPS",
                 "retried_reads", "dropped"});

    for (ssd::PolicyKind policy :
         {ssd::PolicyKind::FixedSequence, ssd::PolicyKind::Rif}) {
        ssd::SsdConfig cfg;
        cfg.policy = policy;
        cfg.peCycles = 3000.0;
        ctx.apply(cfg);

        const auto source = trace::openWorkload(
            wc, trace::workloadByName(ctx.workload("Ali124")),
            rs.requests, rs.seed);
        const auto arrival =
            ssd::makeArrivalPolicy(wc, cfg.queueDepth);
        ssd::Ssd ssd(cfg);
        metrics::MetricsScope scope;
        const ssd::SsdStats st = ssd.run(*source, *arrival);
        scope.finish();

        t.addRow({ssd::policyName(policy),
                  Table::num(st.readLatencyUs.percentile(50), 1),
                  Table::num(st.readLatencyUs.percentile(99), 1),
                  Table::num(st.readLatencyUs.percentile(99.9), 1),
                  Table::num(static_cast<double>(st.hostRequests) /
                                 ticksToSec(st.makespan),
                             0),
                  Table::num(st.retriedReads),
                  Table::num(arrival->stats().dropped)});
    }
    ctx.sink.table(t);
    ctx.sink.text(
        "\nOpen-loop replay at the trace's own timestamps: latency "
        "includes host-queue\nwait, so retry storms back up into the "
        "arrival queue and the conventional\ntail grows past the "
        "device service time; RiF absorbs the same offered load\n"
        "with a near-flat queue.\n");

    if (!temp_path.empty())
        std::remove(temp_path.c_str());
}

} // namespace

RIF_REGISTER_SCENARIO(trace_replay,
                      "Real-trace replay: streaming reader, "
                      "timestamped arrivals",
                      "workload-engine extension of Fig. 19",
                      run);
