/**
 * @file
 * RVS cadence ablation (docs/NAND_MODEL.md §5) — how often must a
 * host-side tracker re-characterize a block's VREFs before its stale
 * reads start retrying? Sweeps the re-characterization cadence against
 * a population of data ages spread over the refresh window and prices
 * each point: mean staleness, tracked-VREF RBER, the fraction of reads
 * that still exceed the ECC capability, and the calibration bandwidth
 * the cadence costs. Honors `--set nand.cellType=` so the trade can be
 * read at TLC (mild) and QLC (brutal).
 */

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/scenario.h"
#include "odear/rvs_cost.h"
#include "odear/rvs_module.h"

namespace {

using namespace rif;
using namespace rif::nand;

/** Host reads/day amortizing the characterization campaign (same
 *  operating point as qlc_retry; docs/NAND_MODEL.md §5). */
constexpr double kReadsPerDay = 10000.0;

void
run(core::ScenarioContext &ctx)
{
    ssd::SsdConfig cfg;
    cfg.peCycles = 1000.0;
    // QLC is where staleness bites within a day; `--set
    // nand.cellType=tlc` reads the same trade on the paper's device.
    cfg.cellType = CellType::Qlc;
    ctx.apply(cfg);

    const VthModel model(cfg.cellType);
    const odear::RvsModule rvs(model);
    const int page_types = pageTypesOf(cfg.cellType);

    // Deterministic age population: a golden-ratio low-discrepancy
    // sequence over the refresh window — evenly spread like the steady
    // state of uniformly written data, but never commensurate with the
    // cadence grid (a stride of refresh/n would alias against cadences
    // that divide it and fake zero staleness).
    const int n_ages = ctx.scaled(64);
    std::vector<double> ages;
    for (int i = 0; i < n_ages; ++i) {
        const double u = i * 0.6180339887498949 + 0.5;
        ages.push_back((u - std::floor(u)) * cfg.refreshDays);
    }

    const double cadences[] = {0.25, 0.5, 1.0, 2.0, 4.0, 8.0};

    Table t("Host RVS tracking vs cadence (" +
            std::string(cellTypeName(cfg.cellType)) + ", " +
            Table::num(cfg.peCycles, 0) + " P/E, ages over " +
            Table::num(cfg.refreshDays, 0) + "d refresh window)");
    t.setHeader({"cadence(d)", "stale_mean(d)", "rvs(x1e-3)",
                 "retry%", "char_rd/day", "amort_us/rd"});

    for (double cadence : cadences) {
        odear::RvsCostParams params = cfg.rvsCost;
        params.recharacterizeDays = cadence;
        const odear::RvsCostEngine engine(model, params);

        double stale = 0.0, rber = 0.0, us = 0.0, char_rd = 0.0;
        std::uint64_t retries = 0, reads = 0;
        for (double age : ages) {
            stale += engine.staleDays(age);
            for (int ty = 0; ty < page_types; ++ty) {
                const PageType type{ty};
                const double r = engine.rberAtTrackedVref(
                    type, cfg.peCycles, age);
                engine.recordTrackedRead(type, age);
                rber += r;
                retries += r > cfg.rber.capability ? 1 : 0;
                ++reads;
            }
        }
        for (int ty = 0; ty < page_types; ++ty) {
            char_rd += engine.characterizationReads(PageType(ty)) /
                       cadence;
            us += engine.amortizedUsPerRead(PageType(ty),
                                            kReadsPerDay);
        }
        t.addRow({Table::num(cadence, 2),
                  Table::num(stale / n_ages, 2),
                  Table::num(rber / reads * 1e3, 2),
                  Table::num(100.0 * retries / reads, 1),
                  Table::num(char_rd, 0),
                  Table::num(us / page_types, 2)});
    }
    ctx.sink.table(t);

    // The in-die alternative this prices against: RiF re-estimates on
    // every failed read, so it has no staleness axis at all.
    Rng rng(cfg.seed);
    double rif = 0.0;
    std::uint64_t rif_n = 0;
    for (double age : ages)
        for (int ty = 0; ty < page_types; ++ty) {
            rif += rvs.select(PageType(ty), cfg.peCycles, age, rng)
                       .predictedRber;
            ++rif_n;
        }
    ctx.sink.text(
        "\nTight cadences keep the tracked RBER near optimal but spend "
        "calibration\nreads (char_rd/day) and amortized latency; loose "
        "cadences go stale and\nretry. RiF's per-read in-die estimate "
        "averages " + Table::num(rif / rif_n * 1e3, 2) +
        "x1e-3 over the same\npopulation with zero characterization "
        "traffic — staleness is the axis\nthe ODEAR engine removes.\n");
}

} // namespace

RIF_REGISTER_SCENARIO(rvs_cadence,
                      "Ablation: host VREF-tracking cadence vs "
                      "staleness cost",
                      "extension study (docs/NAND_MODEL.md §5)",
                      run);
