/**
 * @file
 * Fig. 3 — error-correction capability of the 4-KiB QC-LDPC decoder:
 * (a) decoding-failure probability and (b) average iteration count as
 * functions of RBER, measured by Monte-Carlo on our full-size code
 * (r=4, c=36, t=1024) with a normalized min-sum decoder capped at 20
 * iterations. The paper's capability is 0.0085 (failure prob > 1e-1).
 */

#include "core/artifact_cache.h"
#include "core/scenario.h"
#include "ldpc/capability.h"

namespace {

using namespace rif;
using namespace rif::ldpc;

void
run(core::ScenarioContext &ctx)
{
    const auto code = core::cachedCode(paperCode());

    CapabilitySweepConfig cfg = defaultSweep();
    cfg.trials = ctx.scaled(60);
    const auto points = *core::cachedCapabilitySweep(*code, 20, cfg);

    Table t("Fig. 3: failure probability and iterations vs RBER (" +
            std::to_string(cfg.trials) + " codewords/point)");
    t.setHeader({"RBER(x1e-3)", "fail_prob", "avg_iters", "paper_note"});
    for (const auto &p : points) {
        std::string note;
        if (p.rber == 0.008 || p.rber == 0.009)
            note = "<- capability ~0.0085 in paper";
        t.addRow({Table::num(p.rber * 1e3, 0),
                  Table::num(p.failureProbability, 3),
                  Table::num(p.avgIterations, 1), note});
    }
    ctx.sink.table(t);

    const double cap = estimateCapability(points, 0.1);
    ctx.sink.note("\nMeasured capability (failure prob >= 0.1): ", cap,
                  "  (paper: 0.0085)\n");
    ctx.sink.note("Resolution floor: failure probabilities below ",
                  1.0 / cfg.trials, " print as 0.000\n");
}

} // namespace

RIF_REGISTER_SCENARIO(fig03_ldpc_capability,
                      "QC-LDPC correction capability",
                      "Fig. 3(a) decoding failure probability, "
                      "Fig. 3(b) average iterations",
                      run);
