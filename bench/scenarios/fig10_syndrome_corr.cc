/**
 * @file
 * Fig. 10 — correlation between RBER and syndrome weight of the QC-LDPC
 * code, which is the foundation of the RP heuristic. The paper plots
 * the average *page-level* syndrome weight (a 16-KiB page holds four
 * 4-KiB codewords, so 4 x 4096 syndromes) and derives rho_s = 3830 at
 * the 0.0085 capability; the pruned on-die computation uses only the
 * first 1024 syndromes of one codeword.
 */

#include "core/artifact_cache.h"
#include "core/scenario.h"
#include "ldpc/capability.h"

namespace {

using namespace rif;
using namespace rif::ldpc;

void
run(core::ScenarioContext &ctx)
{
    const auto code = core::cachedCode(paperCode());

    CapabilitySweepConfig cfg = defaultSweep();
    cfg.trials = ctx.scaled(100);
    // Syndrome statistics only: a 1-iteration decoder keeps the sweep
    // cheap while measureCapability records the weights.
    const auto points = *core::cachedCapabilitySweep(*code, 1, cfg);

    Table t("Fig. 10: average syndrome weight vs RBER");
    t.setHeader({"RBER(x1e-3)", "page_weight(4cw,full)",
                 "codeword_weight(full)", "pruned_weight(1/16)"});
    for (const auto &p : points) {
        t.addRow({Table::num(p.rber * 1e3, 0),
                  Table::num(p.avgSyndromeWeight * 4.0, 0),
                  Table::num(p.avgSyndromeWeight, 0),
                  Table::num(p.avgPrunedSyndromeWeight, 0)});
    }
    ctx.sink.table(t);

    const double rho_page =
        4.0 * syndromeWeightAt(points, 0.0085, false);
    const double rho_pruned = syndromeWeightAt(points, 0.0085, true);
    ctx.sink.note("\nrho_s at capability 0.0085:\n",
                  "  page-level (paper's Fig. 10 axis): ", rho_page,
                  "   (paper: 3830)\n",
                  "  pruned on-die threshold (1024 syndromes): ",
                  rho_pruned, "\n");
}

} // namespace

RIF_REGISTER_SCENARIO(fig10_syndrome_corr,
                      "RBER vs syndrome weight correlation",
                      "Fig. 10 (rho_s = 3830 at RBER 0.0085)",
                      run);
