/**
 * @file
 * Ablation (DESIGN.md §6.3) — sensitivity of the RP predictor to the
 * correctability threshold rho_s: sweeping the threshold around its
 * calibrated value trades false in-die retries (threshold too low)
 * against missed uncorrectable pages (too high).
 */

#include "common/rng.h"
#include "core/artifact_cache.h"
#include "core/scenario.h"
#include "ldpc/channel.h"
#include "odear/accuracy.h"

namespace {

using namespace rif;
using namespace rif::odear;

void
run(core::ScenarioContext &ctx)
{
    const auto code = core::cachedCode(ldpc::paperCode());
    const double capability = 0.0085;

    RpConfig base;
    const std::size_t calibrated =
        core::cachedRpThreshold(*code, base, capability, ctx.scaled(40), 31);

    Table t("rho_s sweep: misprediction split at mixed RBERs "
            "(0.006 / 0.0085 / 0.011)");
    t.setHeader({"rho_s", "rel_to_calibrated", "accuracy%",
                 "false_retry%", "miss%"});
    for (double rel : {0.7, 0.85, 1.0, 1.15, 1.3}) {
        RpConfig cfg = base;
        cfg.rhoS = static_cast<std::size_t>(
            static_cast<double>(calibrated) * rel);
        AccuracySweepConfig sweep;
        sweep.rbers = {0.006, 0.0085, 0.011};
        sweep.trials = ctx.scaled(40);
        sweep.seed = 11;
        const auto pts = *core::cachedRpAccuracySweep(*code, cfg, 20, sweep);
        double acc = 0.0, fr = 0.0, miss = 0.0;
        for (const auto &p : pts) {
            acc += p.accuracy;
            fr += p.falseRetryRate;
            miss += p.missRate;
        }
        acc /= pts.size();
        fr /= pts.size();
        miss /= pts.size();
        t.addRow({Table::num(static_cast<std::uint64_t>(cfg.rhoS)),
                  Table::num(rel, 2), Table::num(100.0 * acc, 1),
                  Table::num(100.0 * fr, 1),
                  Table::num(100.0 * miss, 1)});
    }
    ctx.sink.table(t);
    ctx.sink.text(
        "\nThe calibrated rho_s (average syndrome weight at the "
        "capability) balances\nthe two error types; RiF tolerates "
        "low-side errors cheaply (false in-die\nretries cost only die "
        "time), so slightly aggressive thresholds are safe.\n");
}

} // namespace

RIF_REGISTER_SCENARIO(ablation_threshold,
                      "Ablation: RP threshold rho_s sensitivity",
                      "design choice of §IV-B (rho_s from Fig. 10)",
                      run);
