/**
 * @file
 * Table I — the evaluated SSD configuration: geometry, latencies,
 * bandwidths and the ECC engine, as configured in this library's
 * defaults, alongside the scaled-down geometry the simulator actually
 * instantiates.
 */

#include "core/scenario.h"
#include "ssd/config.h"

namespace {

using namespace rif;
using namespace rif::ssd;

void
run(core::ScenarioContext &ctx)
{
    SsdConfig cfg;
    ctx.apply(cfg);
    const nand::Geometry paper = SsdConfig::paperGeometry();
    const nand::Geometry sim = cfg.geometry;

    Table t("Table I: evaluated SSD configuration");
    t.setHeader({"parameter", "paper", "this simulator"});
    auto geo = [](const nand::Geometry &g) {
        return std::to_string(g.channels) + " ch x " +
               std::to_string(g.diesPerChannel) + " dies x " +
               std::to_string(g.planesPerDie) + " planes, " +
               std::to_string(g.blocksPerPlane) + " blk/plane, " +
               std::to_string(g.pagesPerBlock) + " pages/blk";
    };
    t.addRow({"organization", geo(paper), geo(sim)});
    t.addRow({"capacity",
              Table::num(static_cast<double>(paper.capacityBytes()) /
                             (1024.0 * kGiB),
                         2) + " TiB",
              Table::num(static_cast<double>(sim.capacityBytes()) /
                             static_cast<double>(kGiB),
                         0) + " GiB (scaled blocks/plane)"});
    t.addRow({"tR", "40 us", Table::num(ticksToUs(cfg.timing.tR), 1) +
                                 " us"});
    t.addRow({"tPROG", "400 us",
              Table::num(ticksToUs(cfg.timing.tProg), 0) + " us"});
    t.addRow({"tBERS", "3500 us",
              Table::num(ticksToUs(cfg.timing.tErase), 0) + " us"});
    t.addRow({"tDMA (16-KiB page)", "13 us",
              Table::num(ticksToUs(cfg.timing.tDmaPage), 0) + " us"});
    t.addRow({"tECC", "1 to 20 us",
              Table::num(ticksToUs(cfg.timing.tEccMin), 0) + " to " +
                  Table::num(ticksToUs(cfg.timing.tEccMax), 0) + " us"});
    t.addRow({"tPRED", "2.5 us",
              Table::num(ticksToUs(cfg.timing.tPred), 1) + " us"});
    t.addRow({"host bandwidth", "8.0 GB/s (PCIe 4.0 x4)",
              Table::num(cfg.hostGBps, 1) + " GB/s"});
    t.addRow({"channel bandwidth", "1.2 GB/s", "1.2 GB/s (13 us/page)"});
    t.addRow({"ECC engine", "4-KiB LDPC, capability 0.0085",
              "4-KiB QC-LDPC (r=4,c=36,t=1024), capability " +
                  Table::num(cfg.rber.capability, 4)});
    ctx.sink.table(t);

    ctx.sink.text(
        "\nThe simulator keeps Table I's organization and latencies but "
        "scales\nblocks/plane 1888 -> 128 so runs fit in memory; "
        "bandwidth behaviour is\nunaffected (parallelism and timing are "
        "identical).\n");
}

} // namespace

RIF_REGISTER_SCENARIO(table01_config,
                      "Evaluated SSD configuration",
                      "Table I",
                      run);
