/**
 * @file
 * Fig. 4 — distribution of the retention time after which a page's RBER
 * exceeds the ECC correction capability, across the synthetic block
 * population (160 chips x sampled blocks) and P/E cycling levels. Each
 * row is one heat strip of the paper's figure: the proportion of blocks
 * whose threshold falls in each 1-day bin.
 */

#include <algorithm>

#include "core/artifact_cache.h"
#include "core/scenario.h"
#include "nand/characterization.h"

namespace {

using namespace rif;
using namespace rif::nand;

void
run(core::ScenarioContext &ctx)
{
    const RberModel model;
    CharacterizationConfig cfg;
    cfg.blocksPerChip = ctx.scaled(64);
    const BlockPopulation pop(model, cfg);

    const double pes[] = {0.0, 100.0, 200.0, 300.0, 500.0, 1000.0};

    Table t("Fig. 4: proportion of blocks crossing the capability in "
            "each retention-day bin");
    std::vector<std::string> head{"P/E"};
    for (int day = 2; day <= 30; day += 2)
        head.push_back("d" + std::to_string(day));
    head.push_back("median(d)");
    t.setHeader(head);

    for (double pe : pes) {
        // One cached fit per P/E level; binning walks the shared
        // vector with proportionCrossingAtDay's exact arithmetic.
        const auto cached =
            core::cachedRetentionThresholds(model, pop, cfg, pe);
        const auto prop = [&](int day) {
            std::uint64_t in_bin = 0;
            for (double d : *cached) {
                if (d >= static_cast<double>(day) &&
                    d < static_cast<double>(day + 1)) {
                    ++in_bin;
                }
            }
            return static_cast<double>(in_bin) /
                   static_cast<double>(cached->size());
        };
        auto thresholds = *cached;
        std::sort(thresholds.begin(), thresholds.end());
        std::vector<std::string> row{Table::num(pe, 0)};
        for (int day = 2; day <= 30; day += 2) {
            // 2-day bin [day-2, day).
            const double p = prop(day - 2) + prop(day - 1);
            row.push_back(p > 0.0 ? Table::num(p, 2) : ".");
        }
        row.push_back(
            Table::num(thresholds[thresholds.size() / 2], 1));
        t.addRow(row);
    }
    ctx.sink.table(t);

    ctx.sink.text(
        "\nPaper anchors: first crossings at ~17 days (0 P/E), ~14 days"
        " (200 P/E),\n~10 days (500 P/E), ~8 days (1K P/E); every row"
        " crosses well inside the\n1-month refresh window, so read-retry"
        " is a common-case event.\n");
}

} // namespace

RIF_REGISTER_SCENARIO(fig04_retention,
                      "Retention time until RBER exceeds ECC capability",
                      "Fig. 4 heat strips + JEDEC discussion",
                      run);
