/**
 * @file
 * Ablation — host queue depth: how much outstanding parallelism each
 * retry architecture needs to saturate, and where the retry overhead
 * moves from latency into lost bandwidth. QD sweeps are the standard
 * first figure of any SSD evaluation.
 */

#include "core/experiment.h"
#include "core/scenario.h"

namespace {

using namespace rif;
using namespace rif::ssd;

void
run(core::ScenarioContext &ctx)
{
    const std::string wl = ctx.workload("Ali124");

    RunScale rs;
    rs.requests = ctx.scaled(4000);
    ctx.apply(rs);

    Table t("Bandwidth (MB/s) and read p99 (us) vs QD, " + wl +
            " @ 1K P/E");
    t.setHeader({"QD", "SSDzero", "SENC", "RiFSSD", "RiF p99(us)"});
    const std::vector<int> depths{1, 2, 4, 8, 16, 32, 64, 128};
    const PolicyKind policies[] = {PolicyKind::Zero,
                                   PolicyKind::Sentinel, PolicyKind::Rif};
    struct Point
    {
        int qd;
        PolicyKind policy;
    };
    std::vector<Point> points;
    for (int qd : depths)
        for (PolicyKind p : policies)
            points.push_back({qd, p});

    const auto results = parallelRuns(points.size(), [&](std::size_t i) {
        Experiment e;
        e.withPolicy(points[i].policy).withPeCycles(1000.0);
        e.config().queueDepth = points[i].qd;
        ctx.apply(e.config());
        return e.run(wl, rs);
    });

    std::size_t at = 0;
    for (int qd : depths) {
        std::vector<std::string> row{Table::num(std::uint64_t(qd))};
        double rif_p99 = 0.0;
        for (PolicyKind p : policies) {
            const auto &r = results[at++];
            row.push_back(Table::num(r.bandwidthMBps(), 0));
            if (p == PolicyKind::Rif)
                rif_p99 = r.stats.readLatencyUs.percentile(99.0);
        }
        row.push_back(Table::num(rif_p99, 0));
        t.addRow(row);
    }
    ctx.sink.table(t);
    ctx.sink.text(
        "\nAll architectures need deep queues to fill 32 dies; the "
        "off-chip retry\npenalty persists at every depth, so it is a "
        "true bandwidth loss rather\nthan a parallelism artifact.\n");
}

} // namespace

RIF_REGISTER_SCENARIO(ablation_queue_depth,
                      "Ablation: host queue-depth sweep",
                      "saturation behaviour underlying Figs. 6/17",
                      run);
