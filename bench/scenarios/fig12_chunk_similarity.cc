/**
 * @file
 * Fig. 12 — intra-page RBER similarity between fixed-size chunks of the
 * same 16-KiB page, for 4/2/1-KiB chunks across P/E levels and
 * retention times. The paper observes max spreads of ~4.5% (4 KiB) up
 * to ~13.5% (1 KiB), justifying the 4-KiB chunk-based prediction.
 */

#include "core/scenario.h"
#include "nand/characterization.h"

namespace {

using namespace rif;
using namespace rif::nand;

void
run(core::ScenarioContext &ctx)
{
    const RberModel model;
    Rng rng(2024);
    const int pages = ctx.scaled(400);
    // Systematic per-chunk variation from process similarity is tight;
    // the remaining spread is binomial sampling noise.
    const double chunk_sigma = 0.01;

    const double pes[] = {0.0, 1000.0, 2000.0};
    const double rets[] = {0.5, 1.0, 3.0, 7.0, 14.0, 21.0, 28.0};
    const std::uint64_t chunks[] = {4096, 2048, 1024};

    for (std::uint64_t chunk : chunks) {
        Table t("Fig. 12: max spread (%), chunk = " +
                std::to_string(chunk / 1024) + " KiB, " +
                std::to_string(pages) + " pages/point");
        std::vector<std::string> head{"P/E"};
        for (double r : rets)
            head.push_back("d" + Table::num(r, 0));
        t.setHeader(head);
        for (double pe : pes) {
            std::vector<std::string> row{Table::num(pe, 0)};
            for (double ret : rets) {
                const double rber = model.rber(pe, ret);
                const auto sim = measureChunkSimilarity(
                    rber, 16384, chunk, pages, chunk_sigma, rng);
                row.push_back(Table::num(100.0 * sim.maxSpread, 1));
            }
            t.addRow(row);
        }
        ctx.sink.table(t);
        ctx.sink.text("\n");
    }

    ctx.sink.text(
        "Shape checks (as in Fig. 12): spreads shrink as retention/PE "
        "grow (more\nerrors -> relatively less sampling noise) and grow "
        "as the chunk shrinks;\n4-KiB chunks track the page RBER closely"
        " enough for prediction.\n");
}

} // namespace

RIF_REGISTER_SCENARIO(fig12_chunk_similarity,
                      "Intra-page chunk RBER similarity",
                      "Fig. 12 (max (RBERmax-RBERmin)/RBERmax per chunk "
                      "size)",
                      run);
