/**
 * @file
 * Fig. 19 — cumulative distribution of SSD-level read latencies in
 * Ali124 across wear levels and policies, with tail percentiles. The
 * paper reports RiF cutting the 99.99th-percentile latency at 2K P/E
 * by 91.8% / 82.6% / 56.3% versus SENC / SWR / SWR+.
 */

#include "common/metrics.h"
#include "core/experiment.h"
#include "core/scenario.h"

namespace {

using namespace rif;
using namespace rif::ssd;

void
run(core::ScenarioContext &ctx)
{
    const std::string wl = ctx.workload("Ali124");

    RunScale rs;
    rs.requests = ctx.scaled(8000);
    ctx.apply(rs);

    const PolicyKind policies[] = {
        PolicyKind::Sentinel, PolicyKind::SwiftRead,
        PolicyKind::SwiftReadPlus, PolicyKind::RpController,
        PolicyKind::Rif, PolicyKind::Zero};
    const double pes[] = {0.0, 1000.0, 2000.0};

    // One job per (pe, policy) point, all on one workload; each builds
    // its own Experiment so the sweep threads deterministically.
    struct Point
    {
        double pe;
        PolicyKind policy;
    };
    std::vector<Point> points;
    for (double pe : pes)
        for (PolicyKind p : policies)
            points.push_back({pe, p});

    const auto results = parallelRuns(points.size(), [&](std::size_t i) {
        Experiment e;
        e.withPolicy(points[i].policy).withPeCycles(points[i].pe);
        ctx.apply(e.config());
        return e.run(wl, rs);
    });

    std::size_t at = 0;
    for (double pe : pes) {
        Table t("Fig. 19 @ " + Table::num(pe, 0) +
                " P/E: read latency percentiles (us)");
        t.setHeader({"policy", "p50", "p90", "p99", "p99.9", "p99.99",
                     "mean"});
        double senc_tail = 0.0;
        std::vector<std::pair<const char *, double>> tails;
        for (PolicyKind p : policies) {
            // Latencies come from the run's metric registry
            // (ssd.read_latency_us) rather than SsdStats.
            const metrics::Snapshot &m = results[at++].metrics;
            const char *lat = "ssd.read_latency_us";
            const double tail = m.distPercentile(lat, 99.99);
            if (p == PolicyKind::Sentinel)
                senc_tail = tail;
            tails.emplace_back(policyName(p), tail);
            t.addRow({policyName(p),
                      Table::num(m.distPercentile(lat, 50), 0),
                      Table::num(m.distPercentile(lat, 90), 0),
                      Table::num(m.distPercentile(lat, 99), 0),
                      Table::num(m.distPercentile(lat, 99.9), 0),
                      Table::num(tail, 0),
                      Table::num(m.distMean(lat), 0)});
        }
        ctx.sink.table(t);
        for (const auto &[name, tail] : tails) {
            if (std::string(name) == "RiFSSD" && senc_tail > 0.0) {
                ctx.sink.text(
                    "p99.99 reduction of RiFSSD vs SENC: " +
                    Table::num(100.0 * (1.0 - tail / senc_tail), 1) +
                    "%\n");
            }
        }
        ctx.sink.text("\n");
    }

    ctx.sink.text(
        "Paper shape: the off-chip policies' CDFs develop long tails "
        "with wear;\nRiF's stays close to SSDzero's.\n");
}

} // namespace

RIF_REGISTER_SCENARIO(fig19_latency_cdf,
                      "Read latency CDF and tail, Ali124",
                      "Fig. 19 (p99.99 cut by 91.8%/82.6%/56.3% at 2K)",
                      run);
