/**
 * @file
 * Extension bench — the conventional fixed-VREF-sequence retry baseline
 * of §II-B2: how much of the off-chip penalty comes from NRR > 1 (what
 * Sentinel/Swift-Read fix) versus from the one unavoidable failed
 * off-chip round (what only RiF fixes). Sweeps the VREF step quality.
 */

#include "core/experiment.h"
#include "core/scenario.h"

namespace {

using namespace rif;
using namespace rif::ssd;

void
run(core::ScenarioContext &ctx)
{
    const std::string wl = ctx.workload("Ali124");

    RunScale rs;
    rs.requests = ctx.scaled(5000);
    ctx.apply(rs);

    Table t("Conventional retry vs modern solutions (" + wl +
            " @ 2K P/E)");
    t.setHeader({"config", "bandwidth(MB/s)", "uncor_xfers/retried",
                 "read p99(us)"});

    struct Point
    {
        PolicyKind policy;
        double stepFactor;
        const char *label;
    };
    const std::vector<Point> points{
        {PolicyKind::FixedSequence, 0.50, "CONV coarse steps (0.50)"},
        {PolicyKind::FixedSequence, 0.65, "CONV default steps (0.65)"},
        {PolicyKind::FixedSequence, 0.80, "CONV fine steps (0.80)"},
        {PolicyKind::IdealOffChip, 0.65, "SSDone (ideal NRR=1)"},
        {PolicyKind::Sentinel, 0.65, "SENC"},
        {PolicyKind::Rif, 0.65, "RiFSSD"},
    };

    const auto results = parallelRuns(points.size(), [&](std::size_t i) {
        Experiment e;
        e.withPolicy(points[i].policy).withPeCycles(2000.0);
        e.config().seqStepFactor = points[i].stepFactor;
        ctx.apply(e.config());
        return e.run(wl, rs);
    });

    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &r = results[i];
        const double per_retry =
            r.stats.retriedReads
                ? static_cast<double>(r.stats.uncorTransfers) /
                      static_cast<double>(r.stats.retriedReads)
                : 0.0;
        t.addRow({points[i].label, Table::num(r.bandwidthMBps(), 0),
                  Table::num(per_retry, 2),
                  Table::num(r.stats.readLatencyUs.percentile(99), 0)});
    }

    ctx.sink.table(t);
    ctx.sink.text(
        "\nuncor_xfers/retried approximates NRR: finer VREF steps mean "
        "more failed\noff-chip rounds per retry. NRR-reduction (SSDone) "
        "recovers most of the\nconventional loss, but the residual gap "
        "to RiF is the first failed round\nthat no off-chip scheme can "
        "avoid — the paper's core argument.\n");
}

} // namespace

RIF_REGISTER_SCENARIO(ablation_conventional,
                      "Conventional fixed-sequence retry baseline",
                      "extension of §II-B2 / Eq. (1): tREAD amplified "
                      "(1 + NRR) times",
                      run);
