/**
 * @file
 * Fleet offered-load sweep (open loop): Poisson arrivals at a fixed
 * offered rate, independent of completions, against a rack of drives
 * with a bounded host queue. Sweeping the rate traces the classic
 * hockey-stick — flat read tails while the fleet keeps up, then
 * queue-dominated p99/p99.9 and finally drops once the host queue
 * saturates. RiF's on-die early retry raises the knee: the same rack
 * sustains a higher offered load before the tail departs.
 */

#include <string>
#include <vector>

#include "common/metrics.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "fabric/fleet.h"
#include "ssd/arrival.h"
#include "trace/workload.h"

namespace {

using namespace rif;

void
run(core::ScenarioContext &ctx)
{
    const std::string wl = ctx.workload("Ali124");

    RunScale rs;
    rs.requests = ctx.scaled(6000);
    ctx.apply(rs);

    fabric::FleetConfig fc;
    fc.drives = 4;
    fc.qd = 64;
    ctx.apply(fc);

    trace::WorkloadConfig base;
    base.arrival = "poisson";
    base.queueCap = 256;
    ctx.apply(base);

    const std::vector<double> rates_kiops = {25, 50, 100, 200, 400};

    Table t("Fleet open-loop offered-load sweep (" + wl + ", " +
            std::to_string(fc.drives) + " drives, device QD " +
            std::to_string(fc.qd) + ", host queue " +
            std::to_string(base.queueCap) + " @ 3K P/E)");
    t.setHeader({"kIOPS", "policy", "p50(us)", "p99(us)", "p99.9(us)",
                 "enqueued", "dropped"});

    for (double rate : rates_kiops) {
        for (ssd::PolicyKind policy :
             {ssd::PolicyKind::FixedSequence, ssd::PolicyKind::Rif}) {
            ssd::SsdConfig cfg;
            cfg.policy = policy;
            cfg.peCycles = 3000.0;
            ctx.apply(cfg);

            trace::WorkloadConfig wc = base;
            wc.rateKiops = rate;
            const auto source = trace::openWorkload(
                wc, trace::workloadByName(wl), rs.requests, rs.seed);
            const auto arrival = ssd::makeArrivalPolicy(wc, fc.qd);
            fabric::Fleet fleet(cfg, fc);
            metrics::MetricsScope scope;
            const fabric::FleetStats fs = fleet.run(*source, *arrival);
            scope.finish();

            t.addRow({Table::num(rate, 0), ssd::policyName(policy),
                      Table::num(fs.readLatencyUs.percentile(50), 1),
                      Table::num(fs.readLatencyUs.percentile(99), 1),
                      Table::num(fs.readLatencyUs.percentile(99.9), 1),
                      Table::num(arrival->stats().enqueued),
                      Table::num(arrival->stats().dropped)});
        }
    }
    ctx.sink.table(t);
    ctx.sink.text(
        "\nBelow the knee both policies serve at device latency; past "
        "it the bounded\nhost queue dominates the tail and finally "
        "sheds load. The conventional\nretry sequence pulls the knee "
        "left — every off-chip retry burns service\ncapacity — so RiF "
        "sustains a visibly higher offered load at the same "
        "tail.\n");
}

} // namespace

RIF_REGISTER_SCENARIO(fleet_open_loop,
                      "Fleet open-loop offered-load sweep: "
                      "hockey-stick knee, CONV vs RiF",
                      "open-loop extension of Fig. 17/19",
                      run);
