/**
 * @file
 * Ablation (DESIGN.md §6.5) — ECC input-buffer depth: the paper's third
 * root cause (§III-B3) is the channel stalling behind long failed
 * decodes because the decoder's buffer fills. Deeper buffering hides
 * ECCWAIT for the off-chip policies but cannot recover the UNCOR
 * transfer waste — only RiF removes both.
 */

#include "core/experiment.h"
#include "core/scenario.h"

namespace {

using namespace rif;
using namespace rif::ssd;

void
run(core::ScenarioContext &ctx)
{
    const std::string wl = ctx.workload("Ali124");

    RunScale rs;
    rs.requests = ctx.scaled(5000);
    ctx.apply(rs);

    Table t("SSDone and RiFSSD vs ECC buffer depth (" + wl +
            " @ 2K P/E)");
    t.setHeader({"policy", "buffer(pages)", "bandwidth(MB/s)", "ECCWAIT",
                 "UNCOR"});
    struct Point
    {
        PolicyKind policy;
        int depth;
    };
    std::vector<Point> points;
    for (PolicyKind p : {PolicyKind::IdealOffChip, PolicyKind::Rif})
        for (int depth : {1, 2, 4, 8})
            points.push_back({p, depth});

    const auto results = parallelRuns(points.size(), [&](std::size_t i) {
        Experiment e;
        e.withPolicy(points[i].policy).withPeCycles(2000.0);
        e.config().eccBufferPages = points[i].depth;
        ctx.apply(e.config());
        return e.run(wl, rs);
    });

    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &r = results[i];
        t.addRow({policyName(points[i].policy),
                  Table::num(std::uint64_t(points[i].depth)),
                  Table::num(r.bandwidthMBps(), 0),
                  Table::num(
                      r.stats.channelFraction(ChannelState::EccWait), 2),
                  Table::num(
                      r.stats.channelFraction(ChannelState::UncorXfer),
                      2)});
    }
    ctx.sink.table(t);
    ctx.sink.text(
        "\nDeeper decoder buffers shave SSDone's ECCWAIT but leave the "
        "uncorrectable\ntransfer waste, so SSDone never reaches RiF — "
        "buffering alone cannot fix\nthe off-chip retry architecture.\n");
}

} // namespace

RIF_REGISTER_SCENARIO(ablation_ecc_buffer,
                      "Ablation: channel-level ECC buffer depth",
                      "root cause three of §III-B3 / Fig. 18's ECCWAIT",
                      run);
