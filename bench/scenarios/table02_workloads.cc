/**
 * @file
 * Table II — key I/O characteristics of the eight evaluated traces:
 * the synthetic generators' realized read ratio and cold-read ratio
 * against the paper's reported values.
 */

#include "core/experiment.h"
#include "core/scenario.h"
#include "trace/trace.h"

namespace {

using namespace rif;
using namespace rif::trace;

void
run(core::ScenarioContext &ctx)
{
    RunScale rs;
    rs.requests = ctx.scaled(40000);
    ctx.apply(rs);
    const std::uint64_t requests = rs.requests;

    Table t("Table II: read ratio and cold-read ratio per workload");
    t.setHeader({"workload", "read(paper)", "read(measured)",
                 "cold(paper)", "cold(measured)", "footprint(GiB)",
                 "avg_req(KiB)"});
    for (const auto &spec : paperWorkloads()) {
        SyntheticWorkload gen(spec, requests, 7);
        const std::uint64_t cold_start = gen.coldRegionStart();
        const auto c = characterize(gen, cold_start);
        t.addRow({spec.name, Table::num(spec.readRatio, 2),
                  Table::num(c.readRatio(), 2),
                  Table::num(spec.coldReadRatio, 2),
                  Table::num(c.coldReadRatio(), 2),
                  Table::num(static_cast<double>(spec.footprintPages) *
                                 16.0 / (1024.0 * 1024.0),
                             0),
                  Table::num(static_cast<double>(c.totalPages) * 16.0 /
                                 static_cast<double>(c.requests),
                             0)});
    }
    ctx.sink.table(t);
    ctx.sink.text("\nGenerators match Table II's read and cold-read "
                  "ratios by construction;\nfootprints and request sizes "
                  "are representative of cloud block storage.\n");
}

} // namespace

RIF_REGISTER_SCENARIO(table02_workloads,
                      "Workload characteristics",
                      "Table II",
                      run);
