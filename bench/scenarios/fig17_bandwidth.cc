/**
 * @file
 * Fig. 17 — the paper's headline result: I/O bandwidth of SENC, SWR,
 * SWR+, RPSSD, RiFSSD and SSDzero on all eight workloads at 0K/1K/2K
 * P/E cycles, normalized to SENC. The paper reports RiF improving over
 * SENC by 23.8% / 47.4% / 72.1% on average and staying within 1.8% of
 * SSDzero.
 */

#include <cmath>
#include <map>

#include "common/metrics.h"
#include "core/experiment.h"
#include "core/scenario.h"

namespace {

using namespace rif;
using namespace rif::ssd;

/**
 * Host I/O bandwidth computed from the run's metric registry — the
 * same bytes/makespan math as SsdStats::ioBandwidthMBps, but sourced
 * from ssd.host.*_bytes and ssd.makespan_ticks.
 */
double
bandwidthFromMetrics(const RunResult &r)
{
    return bytesPerTickToMBps(r.metrics.value("ssd.host.read_bytes") +
                                  r.metrics.value("ssd.host.write_bytes"),
                              r.metrics.value("ssd.makespan_ticks"));
}

void
run(core::ScenarioContext &ctx)
{
    RunScale rs;
    rs.requests = ctx.scaled(5000);
    ctx.apply(rs);

    const std::vector<PolicyKind> policies(std::begin(kAllPolicies),
                                           std::end(kAllPolicies));
    const double pes[] = {0.0, 1000.0, 2000.0};
    const auto workloads = trace::paperWorkloads();

    // Flatten the pe x workload x policy cube into one job list so all
    // simulations run concurrently; each job builds its own Experiment,
    // so the results are identical at any RIF_THREADS.
    struct Point
    {
        double pe;
        std::string workload;
        PolicyKind policy;
    };
    std::vector<Point> points;
    for (double pe : pes)
        for (const auto &spec : workloads)
            for (PolicyKind p : policies)
                points.push_back({pe, spec.name, p});

    const auto results = parallelRuns(points.size(), [&](std::size_t i) {
        Experiment e;
        e.withPolicy(points[i].policy).withPeCycles(points[i].pe);
        ctx.apply(e.config());
        return e.run(points[i].workload, rs);
    });

    std::size_t at = 0;
    for (double pe : pes) {
        Table t("Fig. 17 @ " + Table::num(pe, 0) +
                " P/E cycles: bandwidth normalized to SENC");
        std::vector<std::string> head{"workload"};
        for (PolicyKind p : policies)
            head.push_back(policyName(p));
        head.push_back("SENC(MB/s)");
        t.setHeader(head);

        std::map<PolicyKind, double> geomean;
        int n = 0;
        for (const auto &spec : workloads) {
            const RunResult *first = &results[at];
            at += policies.size();
            double senc_bw = 0.0;
            for (std::size_t j = 0; j < policies.size(); ++j)
                if (first[j].policy == PolicyKind::Sentinel)
                    senc_bw = bandwidthFromMetrics(first[j]);
            std::vector<std::string> row{spec.name};
            for (std::size_t j = 0; j < policies.size(); ++j) {
                const double norm =
                    bandwidthFromMetrics(first[j]) / senc_bw;
                geomean[first[j].policy] += std::log(norm);
                row.push_back(Table::num(norm, 2));
            }
            row.push_back(Table::num(senc_bw, 0));
            t.addRow(row);
            ++n;
        }
        std::vector<std::string> gm{"geomean"};
        for (PolicyKind p : policies)
            gm.push_back(Table::num(std::exp(geomean[p] / n), 2));
        gm.push_back("");
        t.addRow(gm);
        ctx.sink.table(t);
        ctx.sink.text("\n");
    }

    ctx.sink.text(
        "Paper shape: RiFSSD > RPSSD > SWR+ > SWR >= SENC at every P/E "
        "level, the\ngap widening with wear (avg +72.1% over SENC at "
        "2K); RiFSSD tracks\nSSDzero within a couple of percent.\n");
}

} // namespace

RIF_REGISTER_SCENARIO(fig17_bandwidth,
                      "Normalized I/O bandwidth, all workloads x policies",
                      "Fig. 17 (+23.8%/+47.4%/+72.1% over SENC; within "
                      "1.8% of SSDzero at 2K)",
                      run);
