/**
 * @file
 * QLC retry study (docs/NAND_MODEL.md §4-5) — RiF vs. host-side RVS
 * tracking vs. the conventional fixed VREF sequence, swept over
 * retention age at TLC and QLC. The denser 16-state V_TH window makes
 * QLC cross the ECC capability within days instead of weeks, so the
 * three recovery schemes separate much earlier than on the paper's TLC
 * device: the conventional sequence burns retry rounds, the host
 * tracker reads at VREFs frozen at its last characterization, and
 * RiF's in-die Swift-Read estimate stays near-optimal at every age.
 */

#include <cstdint>
#include <vector>

#include "core/scenario.h"
#include "nand/vref_table.h"
#include "odear/rvs_cost.h"
#include "odear/rvs_module.h"

namespace {

using namespace rif;
using namespace rif::nand;

/** Host reads/day a tracked block region serves; amortizes the
 *  characterization campaign (docs/NAND_MODEL.md §5). */
constexpr double kReadsPerDay = 10000.0;

void
run(core::ScenarioContext &ctx)
{
    ssd::SsdConfig cfg;
    cfg.peCycles = 1000.0;
    ctx.apply(cfg);

    const double ages[] = {0.5, 1.0, 2.0, 4.0, 8.0, 16.0};
    const int trials = ctx.scaled(200);

    Table t("RiF vs host RVS vs CONV across retention age (" +
            Table::num(cfg.peCycles, 0) + " P/E, capability " +
            Table::num(cfg.rber.capability * 1e3, 1) + "x1e-3)");
    t.setHeader({"cell", "ret(d)", "default(x1e-3)", "conv_NRR",
                 "rvs(x1e-3)", "rvs_stale(d)", "rvs_us/rd",
                 "rif(x1e-3)"});

    for (CellType cell : {CellType::Tlc, CellType::Qlc}) {
        const VthModel model(cell);
        const odear::RvsModule rvs(model);
        const odear::RvsCostEngine cost(model, cfg.rvsCost);
        const int page_types = pageTypesOf(cell);

        // One manufacturer retry table per page type, profiled at the
        // sweep's wear point like a vendor would.
        std::vector<VrefSequence> seqs;
        for (int ty = 0; ty < page_types; ++ty)
            seqs.emplace_back(model, PageType(ty), cfg.peCycles,
                              cfg.maxRetrySteps, cfg.refreshDays);

        for (double age : ages) {
            double dflt = 0.0, nrr = 0.0, rvs_rber = 0.0,
                   rvs_us = 0.0, rif_rber = 0.0;
            for (int ty = 0; ty < page_types; ++ty) {
                const PageType type{ty};
                dflt += model.pageRber(type, cfg.peCycles, age);
                nrr += seqs[ty].roundsUntilDecodable(
                    cfg.peCycles, age, cfg.rber.capability);
                rvs_rber +=
                    cost.rberAtTrackedVref(type, cfg.peCycles, age);
                cost.recordTrackedRead(type, age);
                rvs_us += cost.amortizedUsPerRead(type, kReadsPerDay);
                // The in-die estimate is noisy (finite ones counter);
                // average a few draws from a per-point generator so
                // the row is independent of evaluation order.
                Rng rng(cfg.seed ^ (std::uint64_t(cell) << 48) ^
                        (std::uint64_t(ty) << 32) ^
                        std::uint64_t(age * 16.0));
                double acc = 0.0;
                for (int i = 0; i < trials; ++i) {
                    const auto sel =
                        rvs.select(type, cfg.peCycles, age, rng);
                    acc += sel.predictedRber;
                }
                rif_rber += acc / trials;
            }
            const double n = page_types;
            t.addRow({cellTypeName(cell), Table::num(age, 1),
                      Table::num(dflt / n * 1e3, 2),
                      Table::num(nrr / n, 1),
                      Table::num(rvs_rber / n * 1e3, 2),
                      Table::num(cost.staleDays(age), 2),
                      Table::num(rvs_us / n, 2),
                      Table::num(rif_rber / n * 1e3, 2)});
        }
    }
    ctx.sink.table(t);

    ctx.sink.text(
        "\nQLC's 16-state window crosses the capability within days, "
        "where TLC has\nweeks of margin. The conventional sequence "
        "(conv_NRR) pays whole retry\nrounds for what RiF recovers in "
        "one in-die re-read; the host tracker\nmatches RiF right after "
        "a characterization but drifts with staleness\n(rvs_stale) and "
        "pays an amortized calibration tax per read (rvs_us/rd,\nat " +
        Table::num(kReadsPerDay, 0) + " reads/day).\n");
}

} // namespace

RIF_REGISTER_SCENARIO(qlc_retry,
                      "QLC vs TLC: RiF / host-RVS / CONV across "
                      "retention age",
                      "extension study (docs/NAND_MODEL.md §4-5)",
                      run);
