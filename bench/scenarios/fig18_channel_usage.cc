/**
 * @file
 * Fig. 18 — flash-channel usage breakdown (IDLE / COR / UNCOR /
 * ECCWAIT) for the two most read-intensive workloads, Ali121 and
 * Ali124, across wear levels and policies. The paper highlights SWR
 * wasting 54.4% of the channel in UNCOR+ECCWAIT on Ali124 at 2K P/E,
 * while RiF wastes 1.8% (vs RPSSD's 19.9% on Ali121) under UNCOR.
 */

#include "core/experiment.h"
#include "core/scenario.h"

namespace {

using namespace rif;
using namespace rif::ssd;

void
run(core::ScenarioContext &ctx)
{
    RunScale rs;
    rs.requests = ctx.scaled(5000);
    ctx.apply(rs);

    const PolicyKind policies[] = {
        PolicyKind::Sentinel, PolicyKind::SwiftRead,
        PolicyKind::SwiftReadPlus, PolicyKind::RpController,
        PolicyKind::Rif};
    const double pes[] = {0.0, 1000.0, 2000.0};
    const char *workloads[] = {"Ali121", "Ali124"};

    // One job per (workload, pe, policy) point; each builds its own
    // Experiment so the sweep threads deterministically.
    struct Point
    {
        const char *workload;
        double pe;
        PolicyKind policy;
    };
    std::vector<Point> points;
    for (const char *w : workloads)
        for (double pe : pes)
            for (PolicyKind p : policies)
                points.push_back({w, pe, p});

    const auto results = parallelRuns(points.size(), [&](std::size_t i) {
        Experiment e;
        e.withPolicy(points[i].policy).withPeCycles(points[i].pe);
        ctx.apply(e.config());
        return e.run(points[i].workload, rs);
    });

    std::size_t at = 0;
    for (const char *w : workloads) {
        Table t(std::string("Fig. 18: channel usage ratio, ") + w);
        t.setHeader({"P/E", "policy", "IDLE", "COR", "UNCOR", "ECCWAIT",
                     "WRITE"});
        for (double pe : pes) {
            for (PolicyKind p : policies) {
                const auto &st = results[at++].stats;
                t.addRow({Table::num(pe, 0), policyName(p),
                          Table::num(
                              st.channelFraction(ChannelState::Idle), 2),
                          Table::num(
                              st.channelFraction(ChannelState::CorXfer),
                              2),
                          Table::num(st.channelFraction(
                                         ChannelState::UncorXfer),
                                     2),
                          Table::num(
                              st.channelFraction(ChannelState::EccWait),
                              2),
                          Table::num(st.channelFraction(
                                         ChannelState::WriteXfer),
                                     2)});
            }
        }
        ctx.sink.table(t);
        ctx.sink.text("\n");
    }

    ctx.sink.text(
        "Paper shape: off-chip policies waste a growing UNCOR+ECCWAIT "
        "share with\nwear; RPSSD eliminates ECCWAIT but keeps UNCOR; "
        "RiF eliminates both and\nspends the channel almost entirely "
        "on correctable transfers.\n");
}

} // namespace

RIF_REGISTER_SCENARIO(fig18_channel_usage,
                      "Channel usage breakdown",
                      "Fig. 18 (Ali121 / Ali124)",
                      run);
