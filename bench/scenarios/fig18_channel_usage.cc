/**
 * @file
 * Fig. 18 — flash-channel usage breakdown (IDLE / COR / UNCOR /
 * ECCWAIT) for the two most read-intensive workloads, Ali121 and
 * Ali124, across wear levels and policies. The paper highlights SWR
 * wasting 54.4% of the channel in UNCOR+ECCWAIT on Ali124 at 2K P/E,
 * while RiF wastes 1.8% (vs RPSSD's 19.9% on Ali121) under UNCOR.
 */

#include "common/metrics.h"
#include "core/experiment.h"
#include "core/scenario.h"

namespace {

using namespace rif;
using namespace rif::ssd;

/**
 * Fraction of channel time spent in the state whose counter suffix is
 * `state` (e.g. "uncor_ticks"), read from the run's metric registry
 * (`ssd.chan<N>.*_ticks`). Same math as SsdStats::channelFraction: the
 * per-channel fractions averaged over channels.
 */
double
stateFraction(const metrics::Snapshot &m, const char *state)
{
    static constexpr const char *kStates[] = {
        "idle_ticks", "cor_ticks", "uncor_ticks", "eccwait_ticks",
        "write_ticks"};
    double sum = 0.0;
    int channels = 0;
    for (int ch = 0;; ++ch) {
        const std::string prefix = "ssd.chan" + std::to_string(ch) + ".";
        if (!m.find(prefix + kStates[0]))
            break;
        std::uint64_t total = 0, in_state = 0;
        for (const char *s : kStates) {
            const std::uint64_t t = m.value(prefix + s);
            total += t;
            if (std::string_view(s) == state)
                in_state = t;
        }
        sum += total ? static_cast<double>(in_state) /
                           static_cast<double>(total)
                     : 0.0;
        ++channels;
    }
    return channels ? sum / static_cast<double>(channels) : 0.0;
}

void
run(core::ScenarioContext &ctx)
{
    RunScale rs;
    rs.requests = ctx.scaled(5000);
    ctx.apply(rs);

    const PolicyKind policies[] = {
        PolicyKind::Sentinel, PolicyKind::SwiftRead,
        PolicyKind::SwiftReadPlus, PolicyKind::RpController,
        PolicyKind::Rif};
    const double pes[] = {0.0, 1000.0, 2000.0};
    const char *workloads[] = {"Ali121", "Ali124"};

    // One job per (workload, pe, policy) point; each builds its own
    // Experiment so the sweep threads deterministically.
    struct Point
    {
        const char *workload;
        double pe;
        PolicyKind policy;
    };
    std::vector<Point> points;
    for (const char *w : workloads)
        for (double pe : pes)
            for (PolicyKind p : policies)
                points.push_back({w, pe, p});

    const auto results = parallelRuns(points.size(), [&](std::size_t i) {
        Experiment e;
        e.withPolicy(points[i].policy).withPeCycles(points[i].pe);
        ctx.apply(e.config());
        return e.run(points[i].workload, rs);
    });

    std::size_t at = 0;
    for (const char *w : workloads) {
        Table t(std::string("Fig. 18: channel usage ratio, ") + w);
        t.setHeader({"P/E", "policy", "IDLE", "COR", "UNCOR", "ECCWAIT",
                     "WRITE"});
        for (double pe : pes) {
            for (PolicyKind p : policies) {
                // Channel residency comes from the run's metric
                // registry rather than the SsdStats accumulators.
                const metrics::Snapshot &m = results[at++].metrics;
                t.addRow({Table::num(pe, 0), policyName(p),
                          Table::num(stateFraction(m, "idle_ticks"), 2),
                          Table::num(stateFraction(m, "cor_ticks"), 2),
                          Table::num(stateFraction(m, "uncor_ticks"), 2),
                          Table::num(stateFraction(m, "eccwait_ticks"),
                                     2),
                          Table::num(stateFraction(m, "write_ticks"),
                                     2)});
            }
        }
        ctx.sink.table(t);
        ctx.sink.text("\n");
    }

    ctx.sink.text(
        "Paper shape: off-chip policies waste a growing UNCOR+ECCWAIT "
        "share with\nwear; RPSSD eliminates ECCWAIT but keeps UNCOR; "
        "RiF eliminates both and\nspends the channel almost entirely "
        "on correctable transfers.\n");
}

} // namespace

RIF_REGISTER_SCENARIO(fig18_channel_usage,
                      "Channel usage breakdown",
                      "Fig. 18 (Ali121 / Ali124)",
                      run);
