/**
 * @file
 * Figs. 7 and 8(c) — execution timeline of one 256-KiB sequential host
 * read on a single flash channel shared by two 4-plane dies, where the
 * first two 64-KiB multi-plane commands (A, B) require read-retries and
 * the last two (C, D) do not. The paper's timelines complete in 252 us
 * (SSDzero), 418 us (SSDone) and 292 us (RiF).
 *
 * The 16 pages stripe die-first, so LPNs 0..7 land on dies 0/1 page
 * offsets that form commands A and B; marking the *second* half of the
 * logical space cold and reading it first reproduces "A and B retry,
 * C and D do not" with deterministic cold ages.
 */

#include "common/metrics.h"
#include "core/scenario.h"
#include "ssd/ssd.h"
#include "trace/trace.h"

namespace {

using namespace rif;
using namespace rif::ssd;

SsdConfig
timelineConfig(PolicyKind p)
{
    SsdConfig cfg;
    cfg.geometry.channels = 1;
    cfg.geometry.diesPerChannel = 2;
    cfg.geometry.planesPerDie = 4;
    cfg.geometry.blocksPerPlane = 16;
    cfg.geometry.pagesPerBlock = 64;
    cfg.policy = p;
    cfg.queueDepth = 1;
    // 1.5K P/E: hot pages stay clearly decodable while 20-day-old cold
    // pages always retry — the deterministic A/B-retry setting.
    cfg.peCycles = 1500.0;
    // Deterministic retries: cold data is old enough that its RBER is
    // far above the capability, and misprediction noise cannot flip
    // the outcome.
    cfg.coldAgeMinDays = 20.0;
    cfg.hotAgeDays = 0.01;
    return cfg;
}

Tick
runTimeline(const core::ScenarioContext &ctx, PolicyKind p, bool retries)
{
    SsdConfig cfg = timelineConfig(p);
    // One 256-KiB read = 16 pages. With die-first striping, LPNs
    // 0..7 hit both dies' first page offsets (commands A, B) and LPNs
    // 8..15 the next offsets (C, D). Reading the cold half first makes
    // A and B the retried commands.
    // The 256-KiB read is issued as two simultaneous 128-KiB halves
    // (queue depth 2): the cold half (LPNs 16..23, commands A and B —
    // one 64-KiB multi-plane command per die) and the hot half (LPNs
    // 8..15, commands C and D). The cold boundary at 16 makes exactly
    // A and B retry, as in the paper's timeline.
    std::vector<trace::IoRecord> recs;
    recs.push_back({true, 16, 8});
    recs.push_back({true, 8, 8});
    trace::VectorTrace tr(recs, 24, retries ? 16 : 24);
    cfg.queueDepth = 2;
    ctx.apply(cfg);
    // The makespan is read back from the metric registry
    // (ssd.makespan_ticks) published by the drive at end of run.
    metrics::MetricsScope scope;
    Ssd drive(cfg);
    drive.run(tr);
    return scope.finish().value("ssd.makespan_ticks");
}

void
run(core::ScenarioContext &ctx)
{
    // The timeline is fixed-size; the scale factor is ignored.
    Table t("Figs. 7/8(c): total completion time of a 256-KiB read, "
            "A and B retried");
    t.setHeader({"config", "measured(us)", "paper(us)"});

    const Tick zero = runTimeline(ctx, PolicyKind::Zero, false);
    t.addRow({"SSDzero (no retries)", Table::num(ticksToUs(zero), 0),
              "252"});

    const Tick one = runTimeline(ctx, PolicyKind::IdealOffChip, true);
    t.addRow({"SSDone (off-chip retry)", Table::num(ticksToUs(one), 0),
              "418"});

    const Tick rif = runTimeline(ctx, PolicyKind::Rif, true);
    t.addRow({"RiF (on-die retry)", Table::num(ticksToUs(rif), 0),
              "292"});

    ctx.sink.table(t);
    ctx.sink.text(
        "\nShape checks: SSDone pays a large penalty over SSDzero "
        "(paper +166 us);\nRiF recovers most of it (paper +40 us) because"
        " failed pages are neither\ntransferred nor decoded off-chip. "
        "Absolute values differ: the paper\ntransfers 64-KiB units "
        "(tDMA 53 us) while we pipeline 16-KiB pages, and\nthe retried "
        "sense here is a full Swift-Read (2 x tR).\n");
}

} // namespace

RIF_REGISTER_SCENARIO(fig07_timeline,
                      "256-KiB read execution timeline",
                      "Fig. 7 (SSDzero 252 us, SSDone 418 us) and "
                      "Fig. 8(c) (RiF 292 us)",
                      run);
