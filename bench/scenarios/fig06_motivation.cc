/**
 * @file
 * Fig. 6 — motivation: I/O bandwidth of SSDone (ideal off-chip retry,
 * NRR = 1) versus SSDzero (no retries) on four workloads at 0K/1K/2K
 * P/E cycles. The paper reports average degradations of 19.4%, 34.9%
 * and 50.4%.
 */

#include <cmath>

#include "core/experiment.h"
#include "core/scenario.h"

namespace {

using namespace rif;

void
run(core::ScenarioContext &ctx)
{
    RunScale rs;
    rs.requests = ctx.scaled(6000);
    ctx.apply(rs);

    const char *workloads[] = {"Ali121", "Ali124", "Sys0", "Sys1"};
    const double pes[] = {0.0, 1000.0, 2000.0};

    Table t("Fig. 6: I/O bandwidth (MB/s)");
    t.setHeader({"P/E", "workload", "SSDzero", "SSDone", "drop%"});

    for (double pe : pes) {
        double gm_drop = 1.0;
        int n = 0;
        for (const char *w : workloads) {
            Experiment zero, one;
            zero.withPolicy(ssd::PolicyKind::Zero).withPeCycles(pe);
            one.withPolicy(ssd::PolicyKind::IdealOffChip).withPeCycles(pe);
            ctx.apply(zero.config());
            ctx.apply(one.config());
            const double bw_zero = zero.run(w, rs).bandwidthMBps();
            const double bw_one = one.run(w, rs).bandwidthMBps();
            const double drop = 100.0 * (1.0 - bw_one / bw_zero);
            gm_drop *= bw_one / bw_zero;
            ++n;
            t.addRow({Table::num(pe, 0), w, Table::num(bw_zero, 0),
                      Table::num(bw_one, 0), Table::num(drop, 1)});
        }
        t.addRow({Table::num(pe, 0), "average", "", "",
                  Table::num(100.0 * (1.0 - std::pow(gm_drop, 1.0 / n)),
                             1)});
    }
    ctx.sink.table(t);
    ctx.sink.text("\nPaper: average drops of 19.4% (0K), 34.9% (1K), "
                  "50.4% (2K); Ali124 at 2K\nlimited to 2831 MB/s vs "
                  "6026 MB/s for SSDzero.\n");
}

} // namespace

RIF_REGISTER_SCENARIO(fig06_motivation,
                      "SSDone vs SSDzero bandwidth",
                      "Fig. 6 + §III-B2 (19.4/34.9/50.4% average drops)",
                      run);
