/**
 * @file
 * Ablation (DESIGN.md §6.4) — tPRED sensitivity: how slow can the
 * on-die prediction be before RiF loses its advantage? The paper's RP
 * needs ~2.5 us for a 4-KiB chunk; this sweep shows the channel (not
 * the die) remains the bottleneck until tPRED grows pathological.
 */

#include "core/experiment.h"
#include "core/scenario.h"

namespace {

using namespace rif;
using namespace rif::ssd;

void
run(core::ScenarioContext &ctx)
{
    const std::string wl = ctx.workload("Ali124");

    RunScale rs;
    rs.requests = ctx.scaled(5000);
    ctx.apply(rs);

    // Run the SENC baseline and every tPRED point concurrently; job 0
    // is the baseline, jobs 1..n the sweep.
    const std::vector<double> tpreds{0.0, 1.0, 2.5, 5.0,
                                     10.0, 20.0, 40.0};
    const auto results =
        parallelRuns(tpreds.size() + 1, [&](std::size_t i) {
            Experiment e;
            if (i == 0) {
                e.withPolicy(PolicyKind::Sentinel).withPeCycles(2000.0);
            } else {
                e.withPolicy(PolicyKind::Rif).withPeCycles(2000.0);
                e.config().timing.tPred = usToTicks(tpreds[i - 1]);
            }
            ctx.apply(e.config());
            return e.run(wl, rs);
        });
    const double senc_bw = results[0].bandwidthMBps();

    Table t("RiFSSD bandwidth vs tPRED (" + wl + " @ 2K P/E; SENC = " +
            Table::num(senc_bw, 0) + " MB/s)");
    t.setHeader({"tPRED(us)", "bandwidth(MB/s)", "vs SENC",
                 "read p99(us)"});
    for (std::size_t i = 0; i < tpreds.size(); ++i) {
        const auto &r = results[i + 1];
        t.addRow({Table::num(tpreds[i], 1),
                  Table::num(r.bandwidthMBps(), 0),
                  Table::num(r.bandwidthMBps() / senc_bw, 2) + "x",
                  Table::num(r.stats.readLatencyUs.percentile(99), 0)});
    }
    ctx.sink.table(t);
    ctx.sink.text(
        "\nWith 4 dies per 1.2-GB/s channel there is die-time slack: "
        "tPRED well\nabove the 2.5 us implementation still beats the "
        "off-chip baselines, which\nis why a simple (slow-clock) on-die "
        "datapath suffices.\n");
}

} // namespace

RIF_REGISTER_SCENARIO(ablation_tpred,
                      "Ablation: prediction latency (tPRED) sensitivity",
                      "implementation driver of §V (2.5 us datapath)",
                      run);
