/**
 * @file
 * Ablation (DESIGN.md §6.1) — chunk size of the RP prediction: a
 * smaller inspected chunk cuts tPRED but adds sampling noise, degrading
 * accuracy near the capability and (through mispredictions) RiFSSD
 * bandwidth. The paper picks 4 KiB (§V-A1).
 */

#include "core/artifact_cache.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "odear/rp_module.h"

namespace {

using namespace rif;
using namespace rif::ssd;

void
run(core::ScenarioContext &ctx)
{
    const std::string wl = ctx.workload("Ali124");

    const auto code = core::cachedCode(ldpc::paperCode());
    const odear::RpModule rp(*code, odear::RpConfig{});

    RunScale rs;
    rs.requests = ctx.scaled(5000);
    ctx.apply(rs);

    Table t("Chunk size vs tPRED, miss rate and RiFSSD bandwidth "
            "(" + wl + " @ 2K P/E)");
    t.setHeader({"chunk", "tPRED(us)", "missed_pred", "false_retries",
                 "bandwidth(MB/s)"});
    const std::vector<std::uint64_t> chunks{4096, 2048, 1024};
    auto makeExperiment = [&](std::uint64_t chunk) {
        Experiment e;
        e.withPolicy(PolicyKind::Rif).withPeCycles(2000.0);
        // Observation noise scales with the bits the RP samples.
        e.config().rpObservedBits =
            static_cast<double>(chunk) * 8.0 * (1024.0 * 33.0) /
            (4096.0 * 8.0);
        e.config().timing.tPred = rp.predictionLatency(chunk);
        ctx.apply(e.config());
        return e;
    };
    const auto results = parallelRuns(chunks.size(), [&](std::size_t i) {
        return makeExperiment(chunks[i]).run(wl, rs);
    });
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        const auto &r = results[i];
        const Tick t_pred =
            makeExperiment(chunks[i]).config().timing.tPred;
        t.addRow({std::to_string(chunks[i] / 1024) + " KiB",
                  Table::num(ticksToUs(t_pred), 2),
                  Table::num(r.stats.missedPredictions),
                  Table::num(r.stats.falseInDieRetries),
                  Table::num(r.bandwidthMBps(), 0)});
    }
    ctx.sink.table(t);
    ctx.sink.text(
        "\nSmaller chunks halve tPRED but raise mispredictions; the "
        "bandwidth\nimpact is modest because RiF's false positives only "
        "cost in-die time —\nthe paper still picks 4 KiB to bound "
        "misprediction overhead.\n");
}

} // namespace

RIF_REGISTER_SCENARIO(ablation_chunk_size,
                      "Ablation: RP chunk size",
                      "design choice behind Fig. 12 / §V-A1",
                      run);
