/**
 * @file
 * Fleet retry storm: one aged drive (high P/E, retry-heavy) in an
 * otherwise healthy fleet. Under striping every command that touches
 * the aged drive eats its retry latency; replicated placement lets the
 * host steer reads to the least-loaded replica, draining load away
 * from the storming drive. `--set fleet.agedDrives/fleet.agedPeCycles`
 * shape the storm.
 */

#include <string>

#include "common/metrics.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "fabric/fleet.h"

namespace {

using namespace rif;

void
run(core::ScenarioContext &ctx)
{
    const std::string wl = ctx.workload("Ali124");

    RunScale rs;
    rs.requests = ctx.scaled(16000);
    ctx.apply(rs);

    Table t("Fleet retry storm: one aged drive, striped vs replicated "
            "(" + wl + ", RiFSSD)");
    t.setHeader({"placement", "p50(us)", "p99(us)", "p99.9(us)",
                 "balanced_chunks", "aged_retries", "healthy_retries"});

    for (fabric::PlacementKind placement :
         {fabric::PlacementKind::Striped,
          fabric::PlacementKind::Replicated}) {
        fabric::FleetConfig fc;
        fc.drives = 4;
        fc.qd = 256;
        fc.placement = placement;
        fc.replicas = 2;
        fc.agedDrives = 1;
        fc.agedPeCycles = 5000.0;
        ctx.apply(fc);

        ssd::SsdConfig cfg;
        cfg.policy = ssd::PolicyKind::Rif;
        cfg.peCycles = 500.0;
        ctx.apply(cfg);

        trace::SyntheticWorkload source(trace::workloadByName(wl),
                                        rs.requests, rs.seed);
        fabric::Fleet fleet(cfg, fc);
        metrics::MetricsScope scope;
        const fabric::FleetStats fs = fleet.run(source);
        scope.finish();

        std::uint64_t aged = 0, healthy = 0;
        for (std::size_t d = 0; d < fs.drives.size(); ++d)
            (static_cast<int>(d) < fc.agedDrives ? aged : healthy) +=
                fs.drives[d].retriedReads;
        t.addRow({fabric::placementName(placement),
                  Table::num(fs.readLatencyUs.percentile(50), 1),
                  Table::num(fs.readLatencyUs.percentile(99), 1),
                  Table::num(fs.readLatencyUs.percentile(99.9), 1),
                  Table::num(fs.replicaReadsBalanced),
                  Table::num(aged), Table::num(healthy)});
    }
    ctx.sink.table(t);
    ctx.sink.text(
        "\nStriping forces every stripe crossing the aged drive to wait "
        "out its\nretries; replication lets the host's least-loaded "
        "steering shift read\nchunks to healthy replicas, trading "
        "capacity for a flatter storm tail.\n");
}

} // namespace

RIF_REGISTER_SCENARIO(fleet_retry_storm,
                      "Fleet retry storm: aged drive, placement policies",
                      "rack-scale retry-storm study (§VI tail analysis)",
                      run);
