/**
 * @file
 * §VI-C — power/performance/area overhead of the RP module and the
 * energy balance of the RiF scheme: per-prediction cost (3.2 nJ)
 * against the off-chip transfer energy refunded per avoided
 * uncorrectable page movement (907 nJ), evaluated both analytically
 * and on a simulated read-intensive workload.
 */

#include "core/experiment.h"
#include "core/scenario.h"
#include "odear/overhead.h"

namespace {

using namespace rif;
using namespace rif::odear;

void
run(core::ScenarioContext &ctx)
{
    const std::string wl = ctx.workload("Ali124");

    const OverheadModel model;
    const auto &c = model.constants();

    Table t("Synthesis-derived constants (130 nm, 100 MHz)");
    t.setHeader({"metric", "value", "note"});
    t.addRow({"RP area", Table::num(c.areaMm2, 3) + " mm^2",
              Table::num(100.0 * model.areaOverheadFraction(), 4) +
                  "% of a " + Table::num(c.flashDieAreaMm2, 0) +
                  " mm^2 die"});
    t.addRow({"RP power", Table::num(c.powerMw, 2) + " mW", ""});
    t.addRow({"energy per prediction",
              Table::num(c.energyPerPredictionNj, 1) + " nJ",
              "paid by every read"});
    t.addRow({"energy saved per avoided transfer",
              Table::num(c.energySavedPerAvoidedTransferNj, 0) + " nJ",
              "unrecoverable page movement"});
    t.addRow({"break-even",
              Table::num(model.breakEvenReadsPerRetry(), 0) +
                  " reads/avoided-retry",
              "RiF saves energy below this"});
    ctx.sink.table(t);

    // Workload-level energy balance measured on the simulator.
    RunScale rs;
    rs.requests = ctx.scaled(4000);
    ctx.apply(rs);
    Table w("Net RP energy on " + wl + " (negative = RiF saves energy)");
    w.setHeader({"P/E", "predictions", "avoided_transfers",
                 "net_energy(uJ)"});
    for (double pe : {0.0, 1000.0, 2000.0}) {
        Experiment e;
        e.withPolicy(ssd::PolicyKind::Rif).withPeCycles(pe);
        ctx.apply(e.config());
        const auto r = e.run(wl, rs);
        const double net = model.netEnergyNj(r.stats.rpPredictions,
                                             r.stats.avoidedTransfers) /
                           1000.0;
        w.addRow({Table::num(pe, 0), Table::num(r.stats.rpPredictions),
                  Table::num(r.stats.avoidedTransfers),
                  Table::num(net, 1)});
    }
    ctx.sink.table(w);
    ctx.sink.text(
        "\nPaper: the RP module's area/power are negligible and "
        "the scheme is net\nenergy-positive whenever retries "
        "are frequent.\n");
}

} // namespace

RIF_REGISTER_SCENARIO(overhead_ppa,
                      "RP module PPA and energy overhead",
                      "Section VI-C",
                      run);
