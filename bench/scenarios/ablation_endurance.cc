/**
 * @file
 * Extension bench — endurance sweep: effective bandwidth across the
 * whole drive lifetime (0–3K P/E) for every retry architecture. Fig. 17
 * samples three wear points; this sweep shows the full trajectories and
 * where each architecture's bandwidth crosses below a provisioning
 * threshold.
 */

#include "core/experiment.h"
#include "core/scenario.h"

namespace {

using namespace rif;
using namespace rif::ssd;

void
run(core::ScenarioContext &ctx)
{
    const std::string wl = ctx.workload("Sys0");

    RunScale rs;
    rs.requests = ctx.scaled(4000);
    ctx.apply(rs);

    const PolicyKind policies[] = {
        PolicyKind::FixedSequence, PolicyKind::Sentinel,
        PolicyKind::SwiftRead, PolicyKind::SwiftReadPlus,
        PolicyKind::Rif, PolicyKind::Zero};

    Table t("I/O bandwidth (MB/s) on " + wl + " vs P/E cycles");
    std::vector<std::string> head{"policy"};
    const double pes[] = {0.0, 500.0, 1000.0, 1500.0, 2000.0, 2500.0,
                          3000.0};
    for (double pe : pes)
        head.push_back(Table::num(pe, 0));
    t.setHeader(head);

    // Flatten the policy x pe grid into one parallel job list; each job
    // builds its own Experiment so the sweep threads deterministically.
    struct Point
    {
        PolicyKind policy;
        double pe;
    };
    std::vector<Point> points;
    for (PolicyKind p : policies)
        for (double pe : pes)
            points.push_back({p, pe});

    const auto results = parallelRuns(points.size(), [&](std::size_t i) {
        Experiment e;
        e.withPolicy(points[i].policy).withPeCycles(points[i].pe);
        ctx.apply(e.config());
        return e.run(wl, rs);
    });

    std::size_t at = 0;
    for (PolicyKind p : policies) {
        std::vector<std::string> row{policyName(p)};
        for (double pe : pes) {
            (void)pe;
            row.push_back(Table::num(results[at++].bandwidthMBps(), 0));
        }
        t.addRow(row);
    }
    ctx.sink.table(t);
    ctx.sink.text(
        "\nThe off-chip architectures decay steadily with wear while "
        "RiF holds near\nthe no-retry ceiling across the full rated "
        "endurance — the lifetime\nconsequence of the paper's Fig. 17 "
        "snapshots.\n");
}

} // namespace

RIF_REGISTER_SCENARIO(ablation_endurance,
                      "Endurance sweep: bandwidth over drive lifetime",
                      "lifetime view of Fig. 17",
                      run);
