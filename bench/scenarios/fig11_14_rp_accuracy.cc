/**
 * @file
 * Figs. 11 and 14 — validation of the RP read-retry predictor against
 * the real min-sum decoder over an RBER sweep:
 *  - Fig. 11: prediction from the *full* syndrome weight (no
 *    approximations); paper: 99.1% accuracy above the capability.
 *  - Fig. 14: prediction with chunk-based sampling + syndrome pruning
 *    (the on-die datapath); paper: 98.7%.
 */

#include "core/artifact_cache.h"
#include "core/scenario.h"
#include "odear/accuracy.h"

namespace {

using namespace rif;
using namespace rif::odear;

void
run(core::ScenarioContext &ctx)
{
    const auto code = core::cachedCode(ldpc::paperCode());
    const double capability = 0.0085;
    const int calib_trials = ctx.scaled(40);

    RpConfig full_cfg;
    full_cfg.usePruning = false;
    full_cfg.rhoS = core::cachedRpThreshold(*code, full_cfg, capability,
                                            calib_trials, 1001);

    RpConfig approx_cfg; // pruning + chunk (defaults)
    approx_cfg.rhoS = core::cachedRpThreshold(*code, approx_cfg,
                                              capability, calib_trials,
                                              1002);

    AccuracySweepConfig sweep;
    sweep.trials = ctx.scaled(40);
    sweep.seed = 77;
    const auto full =
        *core::cachedRpAccuracySweep(*code, full_cfg, 20, sweep);
    sweep.seed = 78;
    const auto approx =
        *core::cachedRpAccuracySweep(*code, approx_cfg, 20, sweep);

    Table t("Figs. 11/14: % correct prediction by RP vs RBER");
    t.setHeader({"RBER(x1e-3)", "fig11_full_%", "fig14_approx_%",
                 "decode_fail_rate"});
    for (std::size_t i = 0; i < full.size(); ++i) {
        t.addRow({Table::num(full[i].rber * 1e3, 0),
                  Table::num(100.0 * full[i].accuracy, 1),
                  Table::num(100.0 * approx[i].accuracy, 1),
                  Table::num(full[i].decodeFailureRate, 2)});
    }
    ctx.sink.table(t);

    ctx.sink.note(
        "\nAccuracy above the capability (uncorrectable pages):\n",
        "  w/o approximations: ",
        100.0 * accuracyAboveCapability(full, capability),
        "%   (paper: 99.1%)\n",
        "  w/  approximations: ",
        100.0 * accuracyAboveCapability(approx, capability),
        "%   (paper: 98.7%)\n",
        "Calibrated thresholds rho_s: full=", full_cfg.rhoS,
        ", pruned=", approx_cfg.rhoS, "\n",
        "The dip toward ~50% exactly at the capability matches "
        "Fig. 11's shape.\n");
}

} // namespace

RIF_REGISTER_SCENARIO(fig11_14_rp_accuracy,
                      "RP prediction accuracy vs min-sum ground truth",
                      "Fig. 11 (w/o approximations, 99.1%) and Fig. 14 "
                      "(w/ approximations, 98.7%)",
                      run);
