/**
 * @file
 * Thin legacy shim: this experiment now lives in
 * bench/scenarios/fig10_syndrome_corr.cc as a registered scenario; the historical
 * per-figure binary forwards to it (same output, same
 * `[scale|--quick]` argument). Prefer `rif run fig10_syndrome_corr`.
 */

#include "bench_util.h"
#include "core/scenario.h"

int
main(int argc, char **argv)
{
    return rif::core::runScenarioShim(
        "fig10_syndrome_corr", rif::bench::scaleArg(argc, argv));
}
