/**
 * @file
 * Thin legacy shim: this experiment now lives in
 * bench/scenarios/fig03_ldpc_capability.cc as a registered scenario; the historical
 * per-figure binary forwards to it (same output, same
 * `[scale|--quick]` argument). Prefer `rif run fig03_ldpc_capability`.
 */

#include "bench_util.h"
#include "core/scenario.h"

int
main(int argc, char **argv)
{
    return rif::core::runScenarioShim(
        "fig03_ldpc_capability", rif::bench::scaleArg(argc, argv));
}
