/**
 * @file
 * Thin legacy shim: this experiment now lives in
 * bench/scenarios/fig12_chunk_similarity.cc as a registered scenario; the historical
 * per-figure binary forwards to it (same output, same
 * `[scale|--quick]` argument). Prefer `rif run fig12_chunk_similarity`.
 */

#include "bench_util.h"
#include "core/scenario.h"

int
main(int argc, char **argv)
{
    return rif::core::runScenarioShim(
        "fig12_chunk_similarity", rif::bench::scaleArg(argc, argv));
}
