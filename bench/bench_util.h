/**
 * @file
 * Shared helpers for the figure/table regeneration benches: command-line
 * scale overrides and common formatting. Every bench prints the rows or
 * series of one table/figure from the paper; absolute values differ from
 * the authors' testbed but the shape must match (see EXPERIMENTS.md).
 */

#ifndef RIF_BENCH_BENCH_UTIL_H
#define RIF_BENCH_BENCH_UTIL_H

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>

namespace rif {
namespace bench {

/**
 * Scale factor from the command line: `<bench> [scale]`, where scale
 * multiplies the default trial/request counts. `--quick` is 0.25.
 * Only finite positive values are accepted; `inf`/`nan` and other
 * non-numeric arguments are ignored like any unrecognized argument.
 */
inline double
scaleArg(int argc, char **argv, double def = 1.0)
{
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--quick")
            return 0.25;
        char *end = nullptr;
        const double v = std::strtod(a.c_str(), &end);
        if (end && *end == '\0' && std::isfinite(v) && v > 0.0)
            return v;
    }
    return def;
}

/**
 * base * scale as a count: at least 1, clamped to INT_MAX instead of
 * overflowing the int cast, and 1 for non-positive/non-finite scales.
 */
inline int
scaled(std::uint64_t base, double scale)
{
    if (!std::isfinite(scale) || !(scale > 0.0))
        return 1;
    const double v = static_cast<double>(base) * scale;
    if (v >= static_cast<double>(std::numeric_limits<int>::max()))
        return std::numeric_limits<int>::max();
    const auto u = static_cast<std::uint64_t>(v);
    return static_cast<int>(u < 1 ? 1 : u);
}

inline void
header(const std::string &title, const std::string &paper_ref)
{
    std::cout << "##\n## " << title << "\n## Reproduces: " << paper_ref
              << "\n##\n";
}

} // namespace bench
} // namespace rif

#endif // RIF_BENCH_BENCH_UTIL_H
