/**
 * @file
 * Thin legacy shim: this experiment now lives in
 * bench/scenarios/overhead_ppa.cc as a registered scenario; the historical
 * per-figure binary forwards to it (same output, same
 * `[scale|--quick]` argument). Prefer `rif run overhead_ppa`.
 */

#include "bench_util.h"
#include "core/scenario.h"

int
main(int argc, char **argv)
{
    return rif::core::runScenarioShim(
        "overhead_ppa", rif::bench::scaleArg(argc, argv));
}
