/**
 * @file
 * Thin legacy shim: this experiment now lives in
 * bench/scenarios/fig06_motivation.cc as a registered scenario; the historical
 * per-figure binary forwards to it (same output, same
 * `[scale|--quick]` argument). Prefer `rif run fig06_motivation`.
 */

#include "bench_util.h"
#include "core/scenario.h"

int
main(int argc, char **argv)
{
    return rif::core::runScenarioShim(
        "fig06_motivation", rif::bench::scaleArg(argc, argv));
}
