/**
 * @file
 * Google-benchmark microbenchmarks of the fleet round machinery: full
 * fleet replays through the persistent drive-worker runtime
 * (BM_FleetRound), the coalesced single-active-drive fast path
 * (BM_FleetRoundCoalesced), and the cross-page staged RP syndrome
 * datapath against the per-page scalar baseline (BM_RpSyndromeStaged /
 * BM_RpSyndromeScalar).
 *
 * The binary also carries the zero-allocation audit for the steady
 * fleet round loop: global operator new/delete are counted, and main()
 * replays the same fleet at two record counts before running the
 * benchmarks. A round loop that allocates per round (or per record)
 * would scale the allocation count with the replay length; the audit
 * demands the growth stays within the latency-tracker's amortized
 * vector doubling.
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/parallel.h"
#include "fabric/config.h"
#include "fabric/fleet.h"
#include "ldpc/channel.h"
#include "ldpc/code.h"
#include "odear/rearrange.h"
#include "odear/rp_module.h"
#include "ssd/config.h"
#include "ssd/rp_stage.h"
#include "trace/trace.h"

namespace {

std::atomic<std::uint64_t> gAllocs{0};

} // namespace

// Counting overrides for the allocation audit. Deliberately minimal:
// every allocation in the process (any thread, any library) bumps the
// counter, which is exactly what the steady-state audit wants to see.
void *
operator new(std::size_t n)
{
    gAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using namespace rif;

trace::WorkloadSpec
benchWorkload()
{
    trace::WorkloadSpec spec;
    spec.name = "micro_fleet";
    spec.readRatio = 0.8;
    spec.coldReadRatio = 0.7;
    spec.footprintPages = 8192;
    return spec;
}

fabric::FleetConfig
benchFleet(int drives)
{
    fabric::FleetConfig fc;
    fc.drives = drives;
    fc.stripePages = 4;
    return fc;
}

/** One full replay; returns (stats, allocations during run()). */
fabric::FleetStats
replayFleet(int drives, std::uint64_t requests, std::uint64_t *allocs)
{
    ssd::SsdConfig cfg;
    fabric::Fleet fleet(cfg, benchFleet(drives));
    trace::SyntheticWorkload src(benchWorkload(), requests, 11);
    const std::uint64_t before = gAllocs.load(std::memory_order_relaxed);
    const fabric::FleetStats fs = fleet.run(src);
    if (allocs)
        *allocs = gAllocs.load(std::memory_order_relaxed) - before;
    return fs;
}

/**
 * Zero-allocation audit of the steady fleet round loop. The same
 * replay runs twice: with a 1-thread budget every round executes
 * inline (the dispatch vehicle is never touched), and with a 4-thread
 * budget multi-drive rounds go through the persistent worker team's
 * epoch barrier. The simulated work is bit-identical by contract, so
 * the allocation-count delta between the two runs is exactly what the
 * round dispatch machinery allocates: team construction (threads plus
 * scratch, one-time) must be all of it. A vehicle that allocated per
 * round — a published pool job, a freshly built std::function — would
 * scale the delta with the replay's thousands of rounds and blow the
 * tolerance.
 */
bool
runAllocationAudit()
{
    constexpr std::uint64_t kRequests = 1200;
    constexpr std::uint64_t kTolerance = 64;
    setGlobalThreadCount(1);
    std::uint64_t inlineAllocs = 0;
    const fabric::FleetStats serial =
        replayFleet(4, kRequests, &inlineAllocs);
    setGlobalThreadCount(4);
    std::uint64_t teamAllocs = 0;
    const fabric::FleetStats threaded =
        replayFleet(4, kRequests, &teamAllocs);
    setGlobalThreadCount(0);
    const std::uint64_t delta =
        teamAllocs > inlineAllocs ? teamAllocs - inlineAllocs : 0;
    const bool identical = serial.makespan == threaded.makespan &&
                           serial.syncRounds == threaded.syncRounds;
    const bool ok = identical && delta <= kTolerance;
    std::printf("fleet_round_alloc_audit: rounds=%llu inline=%llu "
                "team=%llu delta=%llu tolerance=%llu identical=%s %s\n",
                static_cast<unsigned long long>(threaded.syncRounds),
                static_cast<unsigned long long>(inlineAllocs),
                static_cast<unsigned long long>(teamAllocs),
                static_cast<unsigned long long>(delta),
                static_cast<unsigned long long>(kTolerance),
                identical ? "yes" : "no", ok ? "PASS" : "FAIL");
    return ok;
}

/**
 * Full fleet replay, multi-drive: rounds dispatch onto the persistent
 * worker team. Items processed = host commands, so items/s is simulated
 * host IOPS throughput of the harness.
 */
void
BM_FleetRound(benchmark::State &state)
{
    const int drives = static_cast<int>(state.range(0));
    constexpr std::uint64_t kRequests = 1500;
    std::uint64_t rounds = 0, coalesced = 0;
    for (auto _ : state) {
        const fabric::FleetStats fs =
            replayFleet(drives, kRequests, nullptr);
        rounds = fs.syncRounds;
        coalesced = fs.roundsCoalesced;
        benchmark::DoNotOptimize(rounds);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kRequests));
    state.counters["sync_rounds"] = static_cast<double>(rounds);
    state.counters["coalesced"] = static_cast<double>(coalesced);
}
BENCHMARK(BM_FleetRound)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

/**
 * The coalescing fast path: one drive behind a real link means every
 * round has at most one active drive, so the whole replay stays on the
 * host thread and never touches the barrier. The gap between this and
 * BM_FleetRound/1-drive-per-worker is the pure dispatch overhead.
 */
void
BM_FleetRoundCoalesced(benchmark::State &state)
{
    constexpr std::uint64_t kRequests = 1500;
    std::uint64_t rounds = 0, coalesced = 0;
    for (auto _ : state) {
        const fabric::FleetStats fs = replayFleet(1, kRequests, nullptr);
        rounds = fs.syncRounds;
        coalesced = fs.roundsCoalesced;
        benchmark::DoNotOptimize(rounds);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kRequests));
    state.counters["sync_rounds"] = static_cast<double>(rounds);
    state.counters["coalesced"] = static_cast<double>(coalesced);
}
BENCHMARK(BM_FleetRoundCoalesced)->Unit(benchmark::kMillisecond);

/** Shared fixture for the RP syndrome benches: noisy flash-layout
 *  codewords, reused across iterations. */
struct RpFixture
{
    RpFixture() : code(params()), rp(code, odear::RpConfig{})
    {
        const odear::CodewordRearranger &rr = rp.rearranger();
        Rng rng(3);
        words.reserve(kWords);
        for (int i = 0; i < kWords; ++i) {
            ldpc::HardWord w =
                code.encode(ldpc::randomData(code.params().k(), rng));
            ldpc::injectErrors(w, 0.004 + 0.002 * (i % 3), rng);
            words.push_back(rr.toFlashLayout(ldpc::toBitVec(w)));
        }
    }

    static ldpc::CodeParams params()
    {
        ldpc::CodeParams p;
        p.circulant = 64;
        return p;
    }

    static constexpr int kWords = 256;
    ldpc::QcLdpcCode code;
    odear::RpModule rp;
    std::vector<BitVec> words;
};

RpFixture &
rpFixture()
{
    static RpFixture fx;
    return fx;
}

/**
 * Cross-page staged RP syndrome: groups of range(0) concurrently
 * in-flight codewords staged into the ChannelRpStage and flushed
 * through the 8-lane batch kernels (scalar tail below 8).
 */
void
BM_RpSyndromeStaged(benchmark::State &state)
{
    RpFixture &fx = rpFixture();
    const auto group = static_cast<std::size_t>(state.range(0));
    ssd::ChannelRpStage stage(fx.rp, 1);
    std::uint64_t retries = 0;
    for (auto _ : state) {
        std::size_t i = 0;
        while (i < fx.words.size()) {
            stage.reset();
            const std::size_t lanes =
                std::min(group, fx.words.size() - i);
            for (std::size_t l = 0; l < lanes; ++l)
                (void)stage.stage(0, fx.words[i + l]);
            stage.flushAll();
            for (std::size_t l = 0; l < lanes; ++l)
                retries += stage.retry({0, l}) ? 1 : 0;
            i += lanes;
        }
        benchmark::DoNotOptimize(retries);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * fx.words.size()));
}
BENCHMARK(BM_RpSyndromeStaged)->Arg(1)->Arg(3)->Arg(8)->Arg(64);

/** The per-page scalar baseline the staging buffer replaces. */
void
BM_RpSyndromeScalar(benchmark::State &state)
{
    RpFixture &fx = rpFixture();
    std::uint64_t retries = 0;
    for (auto _ : state) {
        for (const BitVec &w : fx.words)
            retries += fx.rp.predictRetry(w) ? 1 : 0;
        benchmark::DoNotOptimize(retries);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * fx.words.size()));
}
BENCHMARK(BM_RpSyndromeScalar);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    if (!runAllocationAudit())
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
