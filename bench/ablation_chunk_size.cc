/**
 * @file
 * Thin legacy shim: this experiment now lives in
 * bench/scenarios/ablation_chunk_size.cc as a registered scenario; the historical
 * per-figure binary forwards to it (same output, same
 * `[scale|--quick]` argument). Prefer `rif run ablation_chunk_size`.
 */

#include "bench_util.h"
#include "core/scenario.h"

int
main(int argc, char **argv)
{
    return rif::core::runScenarioShim(
        "ablation_chunk_size", rif::bench::scaleArg(argc, argv));
}
