/**
 * @file
 * Thin legacy shim: this experiment now lives in
 * bench/scenarios/fig19_latency_cdf.cc as a registered scenario; the historical
 * per-figure binary forwards to it (same output, same
 * `[scale|--quick]` argument). Prefer `rif run fig19_latency_cdf`.
 */

#include "bench_util.h"
#include "core/scenario.h"

int
main(int argc, char **argv)
{
    return rif::core::runScenarioShim(
        "fig19_latency_cdf", rif::bench::scaleArg(argc, argv));
}
