/**
 * @file
 * Thin legacy shim: this experiment now lives in
 * bench/scenarios/table01_config.cc as a registered scenario; the historical
 * per-figure binary forwards to it (same output, same
 * `[scale|--quick]` argument). Prefer `rif run table01_config`.
 */

#include "bench_util.h"
#include "core/scenario.h"

int
main(int argc, char **argv)
{
    return rif::core::runScenarioShim(
        "table01_config", rif::bench::scaleArg(argc, argv));
}
